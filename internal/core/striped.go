package core

// Erasure-coded stripe paths (docs/erasure.md): the write side cuts a
// write into rs(k,m) stripes, encodes parity and fans all k+m shards
// out to distinct providers; the read side serves degraded reads by
// pulling any k surviving shards of a failed page's stripe and
// decoding inline. Parity pages are ordinary provider pages keyed in
// the high (ParityFlag) half of the write's rel-page space, so every
// PageStore backend and the whole repair protocol handle them
// untouched.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"blob/internal/erasure"
	"blob/internal/meta"
	"blob/internal/mstore"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/trace"
	"blob/internal/wire"
)

// putStriped implements the rs(k,m) write fan-out: one allocation of
// k+m distinct providers per stripe, parity encoding, and per-stripe
// MPutPages dispatch. The dispatch is pipelined: stripe s's shard
// messages are handed to the rpc layer (whose writer loops flush them
// in the background, coalescing messages to the same provider into
// shared frames) before stripe s+1 starts encoding, so the CPU-bound
// parity encode of one stripe overlaps the network push of the
// previous one. It returns one StripeRef per stripe for the metadata
// build.
func (b *Blob) putStriped(ctx context.Context, writeID uint64, buf []byte) ([]*meta.StripeRef, error) {
	k, m := b.red.K, b.red.M
	npages := uint64(len(buf)) / b.pageSize
	nStripes := erasure.NumStripes(npages, k)

	alloc, err := b.allocateProviders(ctx, int(nStripes), k+m)
	if err != nil {
		return nil, err
	}
	group := len(alloc.IDs) / int(nStripes)
	if group < k+m {
		// The manager caps group size at the live provider count; a
		// stripe spread over fewer providers than shards would silently
		// lose the fault-tolerance the mode promises, so fail loudly.
		return nil, fmt.Errorf("core: rs(%d,%d) needs %d distinct live providers per stripe, placement yielded %d",
			k, m, k+m, group)
	}

	refs := make([]*meta.StripeRef, nStripes)
	var parityBytes int64
	pend := make([]*rpc.Pending, 0, int(nStripes)*(k+m))
	// Every early error return must drain the already-dispatched calls:
	// their segments alias buf (data shards) and must stay untouched
	// until flushed.
	push := func(id uint32, rel uint32, data []byte) error {
		addr, err := b.c.providerAddr(ctx, id)
		if err != nil {
			return err
		}
		segs := provider.EncodePutPagesVec(b.id, writeID, []uint32{rel}, [][]byte{data})
		pend = append(pend, b.c.pool.GoVec(addr, provider.MPutPages, segs))
		return nil
	}
	for s := uint64(0); s < nStripes; s++ {
		width := erasure.StripeWidth(s, npages, k)
		code, err := erasure.Cached(width, m)
		if err != nil {
			drainPending(pend)
			return nil, err
		}
		data := make([][]byte, width)
		for i := range data {
			p := s*uint64(k) + uint64(i)
			data[i] = buf[p*b.pageSize : (p+1)*b.pageSize]
		}
		parity, err := code.Encode(data)
		if err != nil {
			drainPending(pend)
			return nil, err
		}
		provs := alloc.IDs[int(s)*group : int(s)*group+width+m]
		ref := &meta.StripeRef{
			K:          uint8(width),
			M:          uint8(m),
			FirstRel:   uint32(s) * uint32(k),
			ParityRel0: erasure.ParityRel(uint32(s), 0, m),
			Provs:      provs,
			Sums:       make([]uint64, width+m),
		}
		for i, d := range data {
			ref.Sums[i] = wire.Checksum64(d)
			if err := push(provs[i], ref.FirstRel+uint32(i), d); err != nil {
				drainPending(pend)
				return nil, err
			}
		}
		for j, p := range parity {
			ref.Sums[width+j] = wire.Checksum64(p)
			if err := push(provs[width+j], erasure.ParityRel(uint32(s), j, m), p); err != nil {
				drainPending(pend)
				return nil, err
			}
			parityBytes += int64(len(p))
		}
		refs[s] = ref
	}

	for i, p := range pend {
		if _, err := p.Wait(ctx); err != nil {
			drainPending(pend[i:])
			return nil, fmt.Errorf("core: store stripe shards: %w", err)
		}
		p.Release()
	}
	b.c.ParityBytes.Add(parityBytes)
	return refs, nil
}

// stripedItem is one erasure-coded page a read must fill.
type stripedItem struct {
	leaf mstore.PageLeaf
	dst  []byte
}

// fetchStriped downloads erasure-coded pages: a first wave fetches
// every page from its single data provider; pages that fail (provider
// down, definite miss, corrupt bytes) or outlive their provider's
// adaptive hedge delay (the rs hedge, hedge.go) degrade to stripe
// reconstruction — pull any k surviving shards, decode, serve, and
// re-push the reconstructed page to its home provider in the
// background.
func (b *Blob) fetchStriped(ctx context.Context, items []stripedItem) (err error) {
	ctx, sop := trace.Start(ctx, "read.stripe")
	if sop != nil {
		defer func() { sop.EndErr(err) }()
	}
	tc := trace.FromContext(ctx)
	dl, _ := ctx.Deadline()
	type group struct {
		refs  []provider.PageRef
		items []stripedItem
		dsts  [][]byte
	}
	groups := make(map[uint32]*group)
	for _, it := range items {
		id := it.leaf.Leaf.Providers[0]
		g := groups[id]
		if g == nil {
			g = &group{}
			groups[id] = g
		}
		g.refs = append(g.refs, provider.PageRef{
			Blob: b.id, Write: it.leaf.Leaf.Write, RelPage: it.leaf.Leaf.RelPage,
		})
		g.items = append(g.items, it)
		g.dsts = append(g.dsts, it.dst)
	}

	var failed []stripedItem
	hedgedPages := 0
	pend := make([]*rpc.Pending, 0, len(groups))
	gs := make([]*group, 0, len(groups))
	addrs := make([]string, 0, len(groups))
	for id, g := range groups {
		addr, err := b.c.providerAddr(ctx, id)
		if err != nil {
			failed = append(failed, g.items...)
			continue
		}
		if !b.c.pool.Available(addr) {
			// Open breaker: skip the fast-fail round trip and degrade
			// straight to reconstruction (which probes every survivor,
			// breakers or not — it is the path of last resort).
			sop.Notef("breaker-skip: provider %d", id)
			failed = append(failed, g.items...)
			continue
		}
		pend = append(pend, b.c.pool.GoVecTD(addr, provider.MGetPages,
			[][]byte{provider.EncodeGetPages(g.refs)}, tc, dl))
		gs = append(gs, g)
		addrs = append(addrs, addr)
	}
	dispatched := time.Now()
	for i, p := range pend {
		resp, err := b.waitShardHedged(ctx, p, addrs[i], dispatched)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, errShardHedged) {
				sop.Notef("hedge: %d pages from %s -> reconstruction", len(gs[i].items), addrs[i])
				hedgedPages += len(gs[i].items)
			}
			failed = append(failed, gs[i].items...)
			continue
		}
		// Shards land straight in their destination slices; failures
		// degrade to reconstruction, which overwrites dst.
		status := make([]provider.PageStatus, len(gs[i].refs))
		err = provider.DecodeGetPagesInto(resp, gs[i].dsts, status)
		p.Release()
		if err != nil {
			return err
		}
		for j, st := range status {
			it := gs[i].items[j]
			if st != provider.PageOK ||
				wire.Checksum64(it.dst) != it.leaf.Leaf.Checksum {
				failed = append(failed, it)
				continue
			}
		}
	}
	if len(failed) == 0 {
		return nil
	}
	sop.Notef("degraded: %d pages", len(failed))

	// Degraded path: group the failures by stripe so each stripe is
	// decoded once however many of its pages this read needs.
	type stripeKey struct {
		write uint64
		first uint32
	}
	byStripe := make(map[stripeKey][]stripedItem)
	for _, it := range failed {
		k := stripeKey{it.leaf.Leaf.Write, it.leaf.Leaf.Stripe.FirstRel}
		byStripe[k] = append(byStripe[k], it)
	}
	for _, its := range byStripe {
		if err := b.reconstructStripe(ctx, its); err != nil {
			return err
		}
	}
	// Every hedged-away page was served by reconstruction (an error
	// above would have returned): those hedges won.
	if hedgedPages > 0 {
		b.c.HedgeWins.Add(int64(hedgedPages))
	}
	return nil
}

// reconstructStripe serves the given pages (all members of one stripe)
// by pulling the stripe's surviving shards and decoding. Any k verified
// shards suffice; fewer fails the read with ErrPageUnavailable.
func (b *Blob) reconstructStripe(ctx context.Context, items []stripedItem) error {
	ref := items[0].leaf.Leaf.Stripe
	write := items[0].leaf.Leaf.Write
	n := int(ref.K) + int(ref.M)

	// Slots that already failed their direct fetch are not re-probed.
	skip := make([]bool, n)
	for _, it := range items {
		if s := ref.SlotOf(it.leaf.Leaf.RelPage); s >= 0 {
			skip[s] = true
		}
	}

	type group struct {
		refs  []provider.PageRef
		slots []int
	}
	groups := make(map[uint32]*group)
	for s := 0; s < n; s++ {
		if skip[s] {
			continue
		}
		id := ref.Provs[s]
		g := groups[id]
		if g == nil {
			g = &group{}
			groups[id] = g
		}
		g.refs = append(g.refs, provider.PageRef{Blob: b.id, Write: write, RelPage: ref.SlotRel(s)})
		g.slots = append(g.slots, s)
	}

	tc := trace.FromContext(ctx)
	dl, _ := ctx.Deadline()
	shards := make([][]byte, n)
	pend := make([]*rpc.Pending, 0, len(groups))
	gs := make([]*group, 0, len(groups))
	for id, g := range groups {
		addr, err := b.c.providerAddr(ctx, id)
		if err != nil {
			continue // unreachable survivor: maybe enough others remain
		}
		pend = append(pend, b.c.pool.GoVecTD(addr, provider.MGetPages,
			[][]byte{provider.EncodeGetPages(g.refs)}, tc, dl))
		gs = append(gs, g)
	}
	for i, p := range pend {
		resp, err := p.Wait(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			continue
		}
		datas, err := provider.DecodeGetPages(resp, len(gs[i].refs))
		if err != nil {
			return err
		}
		for j, data := range datas {
			slot := gs[i].slots[j]
			if data == nil || uint64(len(data)) != b.pageSize ||
				wire.Checksum64(data) != ref.Sums[slot] {
				continue // absent or corrupt shard: not a survivor
			}
			shards[slot] = data
		}
	}

	code, err := erasure.Cached(int(ref.K), int(ref.M))
	if err != nil {
		return err
	}
	if err := code.Reconstruct(shards); err != nil {
		return fmt.Errorf("%w: stripe at rel %d of write %d: %v",
			ErrPageUnavailable, ref.FirstRel, write, err)
	}
	b.c.DegradedReads.Inc()

	var repairs []readRepair
	for _, it := range items {
		slot := ref.SlotOf(it.leaf.Leaf.RelPage)
		data := shards[slot]
		if wire.Checksum64(data) != it.leaf.Leaf.Checksum {
			return fmt.Errorf("%w: page %d reconstructed from stripe", ErrChecksum, it.leaf.Page)
		}
		copy(it.dst, data)
		b.c.ReconstructedPages.Inc()
		// Re-push the reconstructed shard to its home provider in the
		// background: a degraded read restores redundancy as a side
		// effect, exactly like replication's read-repair.
		// scheduleReadRepair copies data if (and only if) it schedules.
		repairs = append(repairs, readRepair{
			write:     write,
			rel:       it.leaf.Leaf.RelPage,
			data:      data,
			providers: []uint32{ref.Provs[slot]},
		})
	}
	if len(repairs) > 0 {
		b.c.scheduleReadRepair(b.id, repairs)
	}
	return nil
}
