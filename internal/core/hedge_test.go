package core_test

// Gray-failure tests (docs/robustness.md): a provider that stalls
// without crashing — heartbeats keep flowing, the manager keeps
// placing data on it — must not stall reads. Hedged reads mask it on
// the replicated path, shard abandonment + stripe reconstruction on
// the erasure-coded path, and circuit breakers stop routing to it
// once the evidence accumulates.

import (
	"bytes"
	"context"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/erasure"
	"blob/internal/events"
	"blob/internal/meta"
)

// tierProvider returns the replica-tier provider IDs of the page at
// offset 0.
func tierProviders(t *testing.T, b *core.Blob, v meta.Version) []uint32 {
	t.Helper()
	leaves, err := b.ReadMeta(context.Background(), 0, pageSize, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 1 {
		t.Fatalf("ReadMeta: %d leaves, want 1", len(leaves))
	}
	return leaves[0].Leaf.Providers
}

func TestHedgedReadMasksStalledReplica(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataReplicas: 2})
	ctx := context.Background()

	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(9, 8*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}

	// Stall page 0's primary replica: its connections stay up, its
	// heartbeats keep flowing, but no page fetch to it ever returns.
	provs := tierProviders(t, b, v)
	if len(provs) != 2 {
		t.Fatalf("page 0 has %d replicas, want 2", len(provs))
	}
	cl.StallProvider(int(provs[0]) - 1)
	defer cl.Heal()

	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	start := time.Now()
	clear(got)
	if _, err := b.Read(rctx, got, 0, v); err != nil {
		t.Fatalf("read with one stalled replica: %v", err)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(got, data) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if c.HedgedReads.Value() == 0 {
		t.Fatal("read never hedged despite a stalled primary")
	}
	if c.HedgeWins.Value() == 0 {
		t.Fatal("no hedge win recorded despite a stalled primary")
	}
	// The stall is unbounded, so completing at all proves the hedge;
	// the bound below only guards against pathological hedge delays.
	if elapsed > 5*time.Second {
		t.Fatalf("hedged read took %v", elapsed)
	}
}

func TestDisableHedgingStalledReplicaBlocksRead(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataReplicas: 2, DisableHedging: true})
	ctx := context.Background()

	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(11, 4*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}

	provs := tierProviders(t, b, v)
	cl.StallProvider(int(provs[0]) - 1)
	defer cl.Heal()

	// Without hedging the read waits out the stalled primary until its
	// deadline: the ablation the hedge exists to beat.
	rctx, cancel := context.WithTimeout(ctx, 400*time.Millisecond)
	defer cancel()
	got := make([]byte, len(data))
	if _, err := b.Read(rctx, got, 0, v); err == nil {
		t.Fatal("read with hedging disabled completed despite the stalled primary")
	}
	if c.HedgedReads.Value() != 0 {
		t.Fatalf("HedgedReads = %d with hedging disabled", c.HedgedReads.Value())
	}

	cl.Heal()
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read after heal returned wrong bytes")
	}
}

func TestStripedHedgeReconstructsStalledShard(t *testing.T) {
	cl, c := launch(t, cluster.Config{
		DataProviders: 6,
		MetaProviders: 6,
		Redundancy:    erasure.Redundancy{K: 4, M: 2},
	})
	ctx := context.Background()

	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(13, 4*pageSize) // one rs(4,2) stripe
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}

	// Stall page 0's home provider: the direct shard fetch to it is
	// abandoned after the hedge delay and the page served by decoding
	// the stripe's other shards.
	_, home := leafPlacement(t, b, v)
	cl.StallProvider(int(home) - 1)
	defer cl.Heal()

	rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	clear(got)
	if _, err := b.Read(rctx, got, 0, v); err != nil {
		t.Fatalf("striped read with one stalled provider: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reconstructed read returned wrong bytes")
	}
	if c.HedgedReads.Value() == 0 || c.HedgeWins.Value() == 0 {
		t.Fatalf("rs hedge counters = %d/%d, want both > 0",
			c.HedgedReads.Value(), c.HedgeWins.Value())
	}
	if c.DegradedReads.Value() == 0 || c.ReconstructedPages.Value() == 0 {
		t.Fatalf("reconstruction counters = %d/%d, want both > 0",
			c.DegradedReads.Value(), c.ReconstructedPages.Value())
	}
}

func TestBreakerOpensOnFlakyProviderAndRecovers(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataReplicas: 2, Breakers: true})
	ctx := context.Background()

	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	data := pattern(17, 8*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}

	provs := tierProviders(t, b, v)
	victim := int(provs[0]) - 1
	cl.FlakyProvider(victim, 1) // every frame resets the connection
	defer cl.Heal()

	// Keep reading: each attempt on the flaky provider fails fast and
	// the replica serves the page, while the failures accumulate into
	// the client's breaker until it opens.
	got := make([]byte, len(data))
	deadline := time.Now().Add(10 * time.Second)
	for len(c.Pool().OpenBreakers()) == 0 {
		rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		_, err := b.Read(rctx, got, 0, v)
		cancel()
		if err != nil {
			t.Fatalf("read during flaky provider: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("read during flaky provider returned wrong bytes")
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never opened on the flaky provider")
		}
	}

	// Heal and keep reading: once OpenFor elapses routing re-admits the
	// peer, the half-open probe succeeds, and the breaker closes —
	// journaling the transition.
	cl.Heal()
	breakerEvents := func() (opened, closed bool) {
		for _, ev := range cl.Events() {
			switch ev.Type {
			case events.BreakerOpen:
				opened = true
			case events.BreakerClose:
				closed = true
			}
		}
		return opened, closed
	}
	deadline = time.Now().Add(10 * time.Second)
	for {
		rctx, cancel := context.WithTimeout(ctx, 2*time.Second)
		_, err := b.Read(rctx, got, 0, v)
		cancel()
		if err != nil {
			t.Fatalf("read after heal: %v", err)
		}
		if _, closed := breakerEvents(); closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never closed after heal")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(c.Pool().OpenBreakers()) > 0 {
		t.Fatalf("breakers still open after close event: %v", c.Pool().OpenBreakers())
	}
	if opened, closed := breakerEvents(); !opened || !closed {
		t.Fatalf("journal events: open=%v close=%v, want both", opened, closed)
	}
}
