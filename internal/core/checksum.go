package core

// Parallel page checksumming for the write path. The paper's §V.C finds
// the client CPU, not the network, is what bounds fine-grain throughput;
// checksumming every page of a large write on one core made that worse.
// For writes big enough to amortize the fork/join, the pages are split
// across a few workers.

import (
	"runtime"
	"sync"

	"blob/internal/wire"
)

// checksumParallelMin is the page count below which forking workers
// costs more than it saves.
const checksumParallelMin = 16

// checksumPages computes wire.Checksum64 for every pageSize-sized page
// of buf, in parallel for large writes.
func checksumPages(buf []byte, pageSize uint64) []uint64 {
	npages := uint64(len(buf)) / pageSize
	sums := make([]uint64, npages)
	workers := runtime.GOMAXPROCS(0)
	if workers > 8 {
		workers = 8
	}
	if npages < checksumParallelMin || workers < 2 {
		for p := uint64(0); p < npages; p++ {
			sums[p] = wire.Checksum64(buf[p*pageSize : (p+1)*pageSize])
		}
		return sums
	}
	chunk := (npages + uint64(workers) - 1) / uint64(workers)
	var wg sync.WaitGroup
	for lo := uint64(0); lo < npages; lo += chunk {
		hi := lo + chunk
		if hi > npages {
			hi = npages
		}
		wg.Add(1)
		go func(lo, hi uint64) {
			defer wg.Done()
			for p := lo; p < hi; p++ {
				sums[p] = wire.Checksum64(buf[p*pageSize : (p+1)*pageSize])
			}
		}(lo, hi)
	}
	wg.Wait()
	return sums
}
