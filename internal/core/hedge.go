package core

// Hedged reads (docs/robustness.md): the tail-latency defense against
// gray failures the breaker has not (yet) tripped on. A page-fetch
// fan-out normally waits for every provider group it dispatched; when
// one group outlives its provider's adaptive hedge delay (~p95 of that
// provider's recent latency, latency.go), the same pages are requested
// from each page's next replica into scratch buffers and whichever
// usable response lands first serves the page. The straggler is never
// decoded after a hedge wins — its eventual completion is drained in
// the background, where it still feeds the provider's breaker — so one
// stalled replica costs a read roughly one hedge delay instead of a
// full RPC timeout. Erasure-coded blobs hedge differently: no single
// provider is ever required, so a straggling shard fetch is abandoned
// outright and its pages served by stripe reconstruction from the
// other k survivors (striped.go).

import (
	"context"
	"errors"
	"time"

	"blob/internal/mstore"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/trace"
	"blob/internal/wire"
)

// fetchItem is one replicated page a read must fill (fetchPages).
type fetchItem struct {
	leaf mstore.PageLeaf
	dst  []byte
	// missed collects providers that definitively lacked the page
	// (absent response or digest-ruled-out) — the read-repair targets.
	missed []uint32
}

// fetchGroup batches one provider's page fetches for a tier wave.
type fetchGroup struct {
	refs  []provider.PageRef
	items []fetchItem
	dsts  [][]byte
}

// hedgeSub is one hedge sub-request: the slice of a straggling group's
// pages whose next replica is the same provider. Hedge responses land
// in scratch buffers, never the caller's dst — the straggler may still
// be decoded there if it responds first.
type hedgeSub struct {
	addr string
	refs []provider.PageRef
	idx  []int // indexes into the straggling group's items
	dsts [][]byte
}

// waitPrimary waits a group's fetch out, feeding its latency and
// outcome to the latency tracker and the provider's breaker.
func (b *Blob) waitPrimary(ctx context.Context, pd *rpc.Pending, addr string, dispatched time.Time) ([]byte, error) {
	resp, err := pd.Wait(ctx)
	b.c.observeFetch(addr, err, time.Since(dispatched))
	return resp, err
}

// drainTimeout bounds how long an abandoned straggler is waited on for
// breaker evidence. A response this late is indistinguishable from none
// at all, so the drain gives up and records a timeout instead — the
// one way a totally stalled provider, whose calls never complete,
// still accumulates evidence.
const drainTimeout = time.Second

// abandonFetch stops waiting for a straggler and drains it in the
// background: its eventual outcome — success, error, or the drain
// timing out — still reaches the breaker, so a provider that stalls
// every call accumulates evidence even though no read ever waits it
// out.
func (b *Blob) abandonFetch(pd *rpc.Pending, addr string, dispatched time.Time) {
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		_, err := pd.Wait(ctx)
		b.c.observeFetch(addr, err, time.Since(dispatched))
		pd.Release()
	}()
}

// waitFetchHedged waits for one replicated group's page fetch. When
// the response outlives the provider's adaptive hedge delay, the same
// pages are requested from each page's next replica tier; hedge
// responses that arrive first populate hedged (scratch page bytes,
// checksum-verified), and once every page is hedge-served the
// straggler is abandoned.
//
// Returns the primary response exactly as Pending.Wait would
// (resp, err), plus hedged[j] — non-nil page bytes for items the hedge
// served, which the caller prefers when the primary failed those items
// — and abandoned, true when the hedge served everything and the
// primary was never decoded (resp and err are then both nil).
func (b *Blob) waitFetchHedged(ctx context.Context, pd *rpc.Pending, g *fetchGroup, addr string, tier int, tc trace.Ctx, dispatched time.Time, fop *trace.Op) (resp []byte, err error, hedged [][]byte, abandoned bool) {
	c := b.c
	if c.opts.DisableHedging {
		resp, err = b.waitPrimary(ctx, pd, addr, dispatched)
		return resp, err, nil, false
	}
	if delay := c.lat.hedgeDelay(addr) - time.Since(dispatched); delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-pd.Done():
			t.Stop()
			resp, err = b.waitPrimary(ctx, pd, addr, dispatched)
			return resp, err, nil, false
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err(), nil, false
		case <-t.C:
		}
	} else {
		select {
		case <-pd.Done():
			resp, err = b.waitPrimary(ctx, pd, addr, dispatched)
			return resp, err, nil, false
		default:
		}
	}

	// The primary is a straggler. Build hedge sub-requests: each item's
	// next replica tier, grouped by provider, skipping items with no
	// next replica, an unresolvable one, or one whose breaker is open.
	subs := make(map[uint32]*hedgeSub)
	for j, it := range g.items {
		provs := it.leaf.Leaf.Providers
		if tier+1 >= len(provs) {
			continue
		}
		haddr, ok := c.cachedProviderAddr(provs[tier+1])
		if !ok || !c.pool.Available(haddr) {
			continue
		}
		s := subs[provs[tier+1]]
		if s == nil {
			s = &hedgeSub{addr: haddr}
			subs[provs[tier+1]] = s
		}
		s.refs = append(s.refs, provider.PageRef{
			Blob: b.id, Write: it.leaf.Leaf.Write, RelPage: it.leaf.Leaf.RelPage,
		})
		s.idx = append(s.idx, j)
		s.dsts = append(s.dsts, make([]byte, b.pageSize))
	}
	if len(subs) == 0 {
		// Nowhere to hedge: the straggler is these pages' only hope at
		// this tier; wait it out.
		resp, err = b.waitPrimary(ctx, pd, addr, dispatched)
		return resp, err, nil, false
	}

	dl, _ := ctx.Deadline()
	hpend := make([]*rpc.Pending, 0, len(subs))
	hsubs := make([]*hedgeSub, 0, len(subs))
	for _, s := range subs {
		fop.Notef("hedge: %d pages -> %s", len(s.refs), s.addr)
		c.HedgedReads.Inc()
		hpend = append(hpend, c.pool.GoVecTD(s.addr, provider.MGetPages,
			[][]byte{provider.EncodeGetPages(s.refs)}, tc, dl))
		hsubs = append(hsubs, s)
	}
	hstart := time.Now()
	hdone := make(chan int, len(hpend))
	for i := range hpend {
		i := i
		go func() {
			select {
			case <-hpend[i].Done():
				hdone <- i
			case <-ctx.Done():
			}
		}()
	}

	hedged = make([][]byte, len(g.items))
	served, outstanding := 0, len(hpend)
	processed := make([]bool, len(hpend))
	drainRest := func() {
		for i := range hpend {
			if !processed[i] {
				b.abandonFetch(hpend[i], hsubs[i].addr, hstart)
			}
		}
	}
	for outstanding > 0 {
		select {
		case <-pd.Done():
			// The straggler beat the remaining hedges after all: it wins
			// whatever the hedges have not already served.
			resp, err = b.waitPrimary(ctx, pd, addr, dispatched)
			drainRest()
			return resp, err, hedged, false
		case <-ctx.Done():
			drainRest()
			return nil, ctx.Err(), hedged, false
		case i := <-hdone:
			processed[i] = true
			outstanding--
			s := hsubs[i]
			hresp, herr := hpend[i].Wait(ctx)
			c.observeFetch(s.addr, herr, time.Since(hstart))
			if herr != nil {
				continue
			}
			status := make([]provider.PageStatus, len(s.refs))
			derr := provider.DecodeGetPagesInto(hresp, s.dsts, status)
			hpend[i].Release()
			if derr != nil {
				continue
			}
			for k, st := range status {
				j := s.idx[k]
				if st == provider.PageOK && hedged[j] == nil &&
					wire.Checksum64(s.dsts[k]) == g.items[j].leaf.Leaf.Checksum {
					hedged[j] = s.dsts[k]
					served++
				}
			}
			if served == len(g.items) {
				fop.Notef("hedge win: %d pages, straggler %s abandoned", served, addr)
				b.abandonFetch(pd, addr, dispatched)
				return nil, nil, hedged, true
			}
		}
	}
	// Every hedge landed without covering everything (misses, or pages
	// with no next replica): the straggler is still those pages' tier —
	// wait it out.
	resp, err = b.waitPrimary(ctx, pd, addr, dispatched)
	return resp, err, hedged, false
}

// errShardHedged marks a striped shard fetch abandoned by the rs(k,m)
// hedge (waitShardHedged); fetchStriped routes those pages to stripe
// reconstruction.
var errShardHedged = errors.New("core: shard fetch hedged to stripe reconstruction")

// waitShardHedged waits for a striped group's direct shard fetch, but
// only up to the provider's adaptive hedge delay: an erasure-coded
// read never needs any one provider, so a straggler is abandoned
// (drained in the background, still feeding its breaker) and its pages
// served by decoding the stripe's other shards — the rs(k,m) form of a
// hedged read. Returns errShardHedged for an abandoned straggler.
func (b *Blob) waitShardHedged(ctx context.Context, pd *rpc.Pending, addr string, dispatched time.Time) ([]byte, error) {
	if b.c.opts.DisableHedging {
		return b.waitPrimary(ctx, pd, addr, dispatched)
	}
	if delay := b.c.lat.hedgeDelay(addr) - time.Since(dispatched); delay > 0 {
		t := time.NewTimer(delay)
		select {
		case <-pd.Done():
			t.Stop()
			return b.waitPrimary(ctx, pd, addr, dispatched)
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	} else {
		select {
		case <-pd.Done():
			return b.waitPrimary(ctx, pd, addr, dispatched)
		default:
		}
	}
	b.c.HedgedReads.Inc()
	b.abandonFetch(pd, addr, dispatched)
	return nil, errShardHedged
}
