package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"blob/internal/meta"
)

// The paper's access unit is the segment — page-aligned offset and size.
// This file layers byte-granular access on top: unaligned reads trim a
// page-aligned read, and unaligned writes do a read-modify-write of the
// boundary pages against a base snapshot. RMW writes are NOT atomic with
// respect to concurrent writers touching the same boundary pages (a
// fundamental property of read-modify-write; the version manager still
// totally orders the resulting patches), so concurrent unaligned writers
// should partition the byte range like aligned ones do.

// ReadAt fills p with bytes at off of version v, with no alignment
// requirements. It implements the io.ReaderAt contract except that the
// version must be supplied via ReaderAt/ReadSeeker adapters below.
func (b *Blob) ReadAt(ctx context.Context, p []byte, off uint64, v meta.Version) error {
	if len(p) == 0 {
		return nil
	}
	if off+uint64(len(p)) > b.CapacityBytes() {
		return fmt.Errorf("core: read [%d,%d) beyond capacity %d", off, off+uint64(len(p)), b.CapacityBytes())
	}
	first := off / b.pageSize * b.pageSize
	last := (off + uint64(len(p)) + b.pageSize - 1) / b.pageSize * b.pageSize
	buf := make([]byte, last-first)
	if _, err := b.Read(ctx, buf, first, v); err != nil {
		return err
	}
	copy(p, buf[off-first:])
	return nil
}

// WriteAt patches the blob with p at byte offset off, producing a new
// version. Boundary pages are completed by reading version base (use the
// latest published version for ordinary use). The entire covering
// page-aligned extent becomes part of the new version's patch.
func (b *Blob) WriteAt(ctx context.Context, p []byte, off uint64, base meta.Version) (meta.Version, error) {
	if len(p) == 0 {
		return 0, errors.New("core: empty unaligned write")
	}
	if off+uint64(len(p)) > b.CapacityBytes() {
		return 0, fmt.Errorf("core: write [%d,%d) beyond capacity %d", off, off+uint64(len(p)), b.CapacityBytes())
	}
	first := off / b.pageSize * b.pageSize
	last := (off + uint64(len(p)) + b.pageSize - 1) / b.pageSize * b.pageSize
	buf := make([]byte, last-first)
	// Read-modify-write: fetch the boundary content from the base
	// snapshot. A fully-aligned request skips the read entirely.
	if off != first || off+uint64(len(p)) != last {
		if _, err := b.Read(ctx, buf, first, base); err != nil {
			return 0, err
		}
	}
	copy(buf[off-first:], p)
	return b.Write(ctx, buf, first)
}

// Reader is a sequential io.Reader / io.Seeker / io.ReaderAt over one
// published version of a blob. It reads through the client's metadata
// cache and never observes later writes — a consistent snapshot cursor.
type Reader struct {
	ctx  context.Context
	b    *Blob
	v    meta.Version
	size uint64
	pos  uint64
}

// NewReader returns a reader over version v. The size is the version's
// logical size, so io.EOF behaves like a file of that length.
func (b *Blob) NewReader(ctx context.Context, v meta.Version) (*Reader, error) {
	published, size, err := b.c.vm.VersionInfo(ctx, b.id, v)
	if err != nil {
		return nil, err
	}
	if !published && v != meta.ZeroVersion {
		return nil, fmt.Errorf("%w: version %d", ErrNotPublished, v)
	}
	return &Reader{ctx: ctx, b: b, v: v, size: size}, nil
}

// Version returns the snapshot the reader is bound to.
func (r *Reader) Version() meta.Version { return r.v }

// Size returns the logical size of the snapshot in bytes.
func (r *Reader) Size() uint64 { return r.size }

// Read implements io.Reader.
func (r *Reader) Read(p []byte) (int, error) {
	if r.pos >= r.size {
		return 0, io.EOF
	}
	n := uint64(len(p))
	if r.pos+n > r.size {
		n = r.size - r.pos
	}
	if err := r.b.ReadAt(r.ctx, p[:n], r.pos, r.v); err != nil {
		return 0, err
	}
	r.pos += n
	return int(n), nil
}

// ReadAt implements io.ReaderAt against the snapshot.
func (r *Reader) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, errors.New("core: negative offset")
	}
	if uint64(off) >= r.size {
		return 0, io.EOF
	}
	n := uint64(len(p))
	short := false
	if uint64(off)+n > r.size {
		n = r.size - uint64(off)
		short = true
	}
	if err := r.b.ReadAt(r.ctx, p[:n], uint64(off), r.v); err != nil {
		return 0, err
	}
	if short {
		return int(n), io.EOF
	}
	return int(n), nil
}

// Seek implements io.Seeker.
func (r *Reader) Seek(offset int64, whence int) (int64, error) {
	var abs int64
	switch whence {
	case io.SeekStart:
		abs = offset
	case io.SeekCurrent:
		abs = int64(r.pos) + offset
	case io.SeekEnd:
		abs = int64(r.size) + offset
	default:
		return 0, fmt.Errorf("core: invalid whence %d", whence)
	}
	if abs < 0 {
		return 0, errors.New("core: negative seek position")
	}
	r.pos = uint64(abs)
	return abs, nil
}

// WriteTo implements io.WriterTo, streaming the snapshot in page-aligned
// chunks sized to amortize metadata round trips.
func (r *Reader) WriteTo(w io.Writer) (int64, error) {
	const chunkPages = 64
	chunk := chunkPages * r.b.pageSize
	var written int64
	buf := make([]byte, chunk)
	for r.pos < r.size {
		n := uint64(len(buf))
		if r.pos+n > r.size {
			n = r.size - r.pos
		}
		if err := r.b.ReadAt(r.ctx, buf[:n], r.pos, r.v); err != nil {
			return written, err
		}
		m, err := w.Write(buf[:n])
		written += int64(m)
		r.pos += uint64(m)
		if err != nil {
			return written, err
		}
	}
	return written, nil
}
