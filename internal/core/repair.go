package core

// Client-side halves of the repair protocol (docs/replication.md §6):
// the digest cache behind bloom-hinted replica routing, and the
// background read-repair pushes that restore redundancy for pages a
// read had to fail over on.

import (
	"context"
	"time"

	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/wire"
)

// readRepair is one page to re-push to the replicas that missed it.
// data may alias the caller's read buffer (or a decode scratch buffer)
// when handed to scheduleReadRepair, which copies it — only for repairs
// it actually schedules — before returning.
type readRepair struct {
	write     uint64
	rel       uint32
	data      []byte
	providers []uint32
}

// cachedDigest returns provider id's holdings digest if a fresh one is
// cached. ok is false when none (or only a stale or digest-less entry)
// is cached — the caller must probe the provider.
func (c *Client) cachedDigest(id uint32) (provider.Digest, bool) {
	c.digestMu.RLock()
	e, ok := c.digests[id]
	c.digestMu.RUnlock()
	if !ok || !e.ok || time.Since(e.at) > digestTTL {
		return provider.Digest{}, false
	}
	return e.d, true
}

// refreshDigests refreshes holdings digests for the given providers
// (scoped to the writes that just missed there), caching the results
// for digestTTL. The cheap path seeds the whole cache from the
// provider manager — providers piggyback their digests on heartbeats,
// so one MDigests round trip usually covers every replica. Only
// providers the manager has no digest for fall back to a direct
// MListWrites probe; ones whose fetch fails get a negative entry so a
// dead node is not digest-probed on every page of a large read.
func (c *Client) refreshDigests(ctx context.Context, blob uint64, writes map[uint32][]uint64) {
	c.seedDigestsFromManager(ctx)
	for id, ws := range writes {
		c.digestMu.RLock()
		e, ok := c.digests[id]
		c.digestMu.RUnlock()
		if ok && time.Since(e.at) <= digestTTL {
			continue // fetched recently (possibly by a concurrent read)
		}
		refs := make([]provider.WriteRef, 0, len(ws))
		seen := make(map[uint64]bool, len(ws))
		for _, w := range ws {
			if !seen[w] {
				seen[w] = true
				refs = append(refs, provider.WriteRef{Blob: blob, Write: w})
			}
		}
		entry := digestEntry{at: time.Now()}
		if addr, err := c.providerAddr(ctx, id); err == nil {
			dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			resp, err := c.pool.Call(dctx, addr, provider.MListWrites, provider.EncodeListWrites(refs))
			cancel()
			if err == nil {
				if h, err := provider.DecodeListWrites(resp); err == nil && h.HasDigest {
					entry.d, entry.ok = h.Digest, true
				}
			}
		}
		c.digestMu.Lock()
		c.digests[id] = entry
		c.digestMu.Unlock()
	}
}

// seedDigestsFromManager bulk-loads the digest cache from the provider
// manager's heartbeat-piggybacked copies (MDigests), at most once per
// digestTTL — including after a failure, so a down manager costs one
// timed-out RPC per TTL, not one per miss. Entries decode-checked; a
// provider the manager holds no digest for is simply left for the
// per-provider fallback.
func (c *Client) seedDigestsFromManager(ctx context.Context) {
	c.digestMu.RLock()
	last := c.digestSeedAt
	c.digestMu.RUnlock()
	if time.Since(last) <= digestTTL {
		return
	}
	dctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	ds, err := pmanager.FetchDigests(dctx, c.pool, c.opts.PManagerAddr)
	cancel()
	now := time.Now()
	c.digestMu.Lock()
	defer c.digestMu.Unlock()
	c.digestSeedAt = now
	if err != nil {
		return
	}
	for _, pd := range ds {
		if len(pd.Digest) == 0 {
			continue // provider never piggybacked one: probe directly
		}
		r := wire.NewReader(pd.Digest)
		d := provider.DecodeDigest(r)
		if r.Err() != nil {
			continue
		}
		c.digests[pd.ID] = digestEntry{d: d, ok: true, at: now}
	}
}

// SeedDigest injects a provider digest into the routing cache as if
// MListWrites had just returned it. Tests use it to pin the routing
// behavior around bloom false positives and stale digests.
func (c *Client) SeedDigest(id uint32, d provider.Digest) {
	c.digestMu.Lock()
	c.digests[id] = digestEntry{d: d, ok: true, at: time.Now()}
	c.digestMu.Unlock()
}

// InvalidateDigests drops every cached provider digest, forcing the next
// reads to probe replicas directly. Tests and tooling use it after
// healing a provider faster than digestTTL would notice.
func (c *Client) InvalidateDigests() {
	c.digestMu.Lock()
	c.digests = make(map[uint32]digestEntry)
	c.digestMu.Unlock()
}

// scheduleReadRepair re-pushes served pages to the replicas that missed
// them, in the background and bounded by repairSem — a saturated client
// drops the repairs rather than queueing unboundedly (the repair agent
// or a later read will retry). First-wins idempotent puts make
// duplicate pushes harmless.
func (c *Client) scheduleReadRepair(blob uint64, repairs []readRepair) {
	select {
	case c.repairSem <- struct{}{}:
	default:
		return // saturated: shed this batch
	}
	// Materialize owned copies only now that the batch is definitely
	// going out — a shed batch costs nothing, and pages served straight
	// into the caller's buffer are captured before Read returns and the
	// caller may reuse it.
	for i := range repairs {
		repairs[i].data = append([]byte(nil), repairs[i].data...)
	}
	go func() {
		defer func() { <-c.repairSem }()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		// One MPutPages per (provider, write) batch, like the write path.
		type key struct {
			id    uint32
			write uint64
		}
		type batch struct {
			rels  []uint32
			datas [][]byte
		}
		batches := make(map[key]*batch)
		for _, r := range repairs {
			for _, id := range r.providers {
				k := key{id, r.write}
				bt := batches[k]
				if bt == nil {
					bt = &batch{}
					batches[k] = bt
				}
				bt.rels = append(bt.rels, r.rel)
				bt.datas = append(bt.datas, r.data)
			}
		}
		for k, bt := range batches {
			addr, err := c.providerAddr(ctx, k.id)
			if err != nil {
				continue // provider gone: the repair agent will handle it
			}
			body := provider.EncodePutPages(blob, k.write, bt.rels, bt.datas)
			if _, err := c.pool.Call(ctx, addr, provider.MPutPages, body); err == nil {
				c.ReadRepairs.Add(int64(len(bt.rels)))
			}
		}
	}()
}
