// Package core implements the blob client: the paper's ALLOC, READ and
// WRITE primitives (plus APPEND) orchestrated over the distributed
// services — version manager, provider manager, data providers and
// DHT-based metadata providers.
//
// The client is the locus of the paper's parallelism claims: page
// transfers fan out to all involved data providers concurrently, metadata
// fetches proceed level-by-level in per-provider batches, and the only
// serialized step of any operation is the version manager interaction,
// which is a single small RPC.
package core

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"blob/internal/dht"
	"blob/internal/erasure"
	"blob/internal/events"
	"blob/internal/meta"
	"blob/internal/mstore"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/stats"
	"blob/internal/trace"
	"blob/internal/vmanager"
)

// Errors surfaced by client operations.
var (
	// ErrNotPublished is returned by Read when the requested version is
	// newer than the latest published version (the paper's failing READ).
	ErrNotPublished = errors.New("core: version not yet published")
	// ErrChecksum is returned when a page fails integrity verification on
	// every replica.
	ErrChecksum = errors.New("core: page checksum mismatch")
	// ErrPageUnavailable is returned when a page cannot be fetched from
	// any replica.
	ErrPageUnavailable = errors.New("core: page unavailable on all replicas")
)

// Options configures a Client.
type Options struct {
	// Network provides connectivity (rpc.TCP{} or a netsim host).
	Network rpc.Network
	// VManagerAddr is the version manager's RPC address.
	VManagerAddr string
	// VManagerShards, when set, addresses a sharded+replicated vmanager
	// group instead of VManagerAddr: one replica address list per shard
	// (docs/vmanager-group.md). Blobs route to shards by id hash with
	// NotLeader redirect handling.
	VManagerShards [][]string
	// PManagerAddr is the provider manager's RPC address.
	PManagerAddr string
	// MetaDirAddr is the metadata directory's RPC address (DHT membership).
	MetaDirAddr string
	// DataReplicas is the number of copies of each page (default 1).
	// Ignored for blobs in rs(k,m) mode, whose redundancy is parity.
	DataReplicas int
	// Redundancy selects the redundancy mode for blobs this client
	// creates (docs/erasure.md): the zero value defers to the mode the
	// provider manager advertises for the deployment (falling back to
	// full replication), rs(k,m) forces erasure-coded stripes. Blobs
	// opened with OpenBlob always use the mode recorded at their
	// creation.
	Redundancy erasure.Redundancy
	// MetaReplicas is the DHT replication factor for tree nodes (default 1).
	MetaReplicas int
	// CacheNodes bounds the client metadata cache; 0 disables it,
	// negative selects the paper's 2^20.
	CacheNodes int
	// MetaProcessDelay models the client-side cost of deserializing one
	// fetched metadata node (simulation knob for the experiment
	// harness; zero disables it). See mstore.Client.ProcessDelay.
	MetaProcessDelay time.Duration
	// LegacyDataPath selects the pre-vectored data path: contiguous
	// request encoding, copying response decode, and strictly sequential
	// write phases. It exists for the hot-path ablation
	// (bench.AblateHotPath, docs/perf.md) — production clients leave it
	// false and get the zero-copy codec plus the pipelined write
	// protocol.
	LegacyDataPath bool
	// DisableHedging turns off hedged reads (docs/robustness.md):
	// without it, a page fetch that outlives its provider's adaptive
	// hedge delay (~p95 of that provider's recent latency) is raced
	// against the next replica — or, for rs(k,m) blobs, served by early
	// stripe reconstruction — and the first usable response wins. The
	// knob exists for the gray-failure ablation (bench.AblateChaos).
	DisableHedging bool
	// Breakers enables per-peer circuit breakers on the client's RPC
	// pool (docs/robustness.md): a provider whose calls persistently
	// fail or crawl is failed fast and routed around — replica routing
	// treats an open breaker like a bloom miss, never skipping the last
	// replica holding a page — until a background probe finds the peer
	// healthy again.
	Breakers bool
	// Journal, when non-nil, receives this client's connectivity
	// events: dial-failure bursts and circuit-breaker transitions.
	Journal *events.Journal
	// Tracer records spans for this client's operations and propagates
	// them to every service the operation touches (docs/observability.md).
	// Nil disables tracing; the operation hot path then stays
	// allocation-free. Sampling policy is the tracer's.
	Tracer *trace.Tracer
	// SlowThreshold, when positive and tracing is enabled, dumps the
	// locally recorded span tree of any sampled operation slower than it
	// through Logf — the slow-request log.
	SlowThreshold time.Duration
	// Logf receives slow-request reports (default log.Printf).
	Logf func(format string, args ...any)
}

// Client talks to one deployment of the service. It is safe for
// concurrent use; the paper's experiments run one client per node, each
// performing many concurrent RPCs.
type Client struct {
	opts Options
	pool *rpc.Pool
	vm   *vmanager.GroupClient
	ms   *mstore.Client

	provMu    sync.RWMutex
	providers map[uint32]string

	// Bloom-hinted replica routing (docs/replication.md §6): per-provider
	// holdings digests refreshed after a definite page miss — bulk-seeded
	// from the provider manager's heartbeat-piggybacked copies, with a
	// direct MListWrites probe as the fallback. A fresh digest lets later
	// fetches skip replicas that definitely lack a page before paying the
	// RPC round trip; entries expire after digestTTL so a repaired
	// provider is probed again.
	digestMu     sync.RWMutex
	digests      map[uint32]digestEntry
	digestSeedAt time.Time // last MDigests bulk seed (throttled to digestTTL)

	// repairSem bounds concurrent background read-repair pushes; when it
	// is saturated further repairs are dropped (the repair agent or a
	// later read retries them).
	repairSem chan struct{}

	// lat tracks per-provider fetch latency; the read path derives each
	// provider's adaptive hedge delay from it (latency.go).
	lat *latencies

	// Metrics for the experiment harness.
	Writes        stats.Counter
	Reads         stats.Counter
	BytesWritten  stats.Counter
	BytesRead     stats.Counter
	WriteLatency  stats.Histogram
	ReadLatency   stats.Histogram
	MetaReadTime  stats.Histogram
	MetaWriteTime stats.Histogram
	// ReadRepairs counts page replicas this client re-pushed to degraded
	// providers after a read served them from a healthy replica;
	// BloomSkips counts replica probes avoided by digest routing.
	ReadRepairs stats.Counter
	BloomSkips  stats.Counter
	// Erasure-coding counters (docs/erasure.md): DegradedReads counts
	// stripe decodes the read path performed because a data shard was
	// unreachable; ReconstructedPages the pages those decodes produced;
	// ParityBytes the parity payload this client computed and uploaded
	// on writes.
	DegradedReads      stats.Counter
	ReconstructedPages stats.Counter
	ParityBytes        stats.Counter
	// Hedged-read counters (docs/robustness.md): HedgedReads counts
	// hedge RPCs issued because a page fetch outlived its provider's
	// adaptive hedge delay; HedgeWins counts pages actually served by
	// hedge data (replicate mode) or by the early stripe reconstruction
	// a straggling shard provider was abandoned for (rs mode).
	HedgedReads stats.Counter
	HedgeWins   stats.Counter

	// clusterRed is the redundancy mode the provider manager advertises,
	// captured at connect; the effective creation mode when
	// Options.Redundancy is zero.
	clusterRed erasure.Redundancy
}

// digestTTL bounds how long a fetched provider digest steers replica
// routing. Short enough that a provider healed behind the client's back
// is probed again promptly; long enough to keep a dead replica from
// being re-probed on every page of a large read.
const digestTTL = 5 * time.Second

// digestEntry caches one provider's MListWrites digest. ok records
// whether the provider produced a digest at all — a provider that
// cannot summarize its holdings is never skipped.
type digestEntry struct {
	d  provider.Digest
	ok bool
	at time.Time
}

// NewClient connects to a deployment.
func NewClient(ctx context.Context, opts Options) (*Client, error) {
	if opts.Network == nil {
		return nil, errors.New("core: Options.Network is required")
	}
	if opts.DataReplicas < 1 {
		opts.DataReplicas = 1
	}
	if opts.MetaReplicas < 1 {
		opts.MetaReplicas = 1
	}
	pool := rpc.NewPool(opts.Network)
	pool.SetJournal(opts.Journal)
	if opts.Breakers {
		// Latency tripping is on for clients: the gray failure worth
		// detecting is the provider that answers everything, slowly —
		// error-rate alone never sees it. 250ms of sustained success
		// latency is far beyond any healthy page fetch and comfortably
		// below the multi-second stalls the chaos harness injects.
		pool.EnableBreakers(rpc.BreakerConfig{LatencyTrip: 250 * time.Millisecond})
	}
	kv, err := dht.NewDirectoryClient(ctx, pool, opts.MetaDirAddr, opts.MetaReplicas)
	if err != nil {
		pool.Close()
		return nil, fmt.Errorf("core: connect metadata directory: %w", err)
	}
	ms := mstore.New(kv, opts.CacheNodes)
	ms.ProcessDelay = opts.MetaProcessDelay
	ms.Vectored = !opts.LegacyDataPath
	vmShards := opts.VManagerShards
	if len(vmShards) == 0 {
		// A single unsharded, unreplicated manager is the degenerate
		// 1x1 group.
		vmShards = [][]string{{opts.VManagerAddr}}
	}
	c := &Client{
		opts:      opts,
		pool:      pool,
		vm:        vmanager.NewGroupClient(pool, vmShards),
		ms:        ms,
		providers: make(map[uint32]string),
		digests:   make(map[uint32]digestEntry),
		repairSem: make(chan struct{}, 4),
		lat:       newLatencies(),
	}
	if err := c.refreshProviders(ctx); err != nil {
		pool.Close()
		return nil, err
	}
	return c, nil
}

// Close releases all connections.
func (c *Client) Close() { c.pool.Close() }

// Meta exposes the metadata client (benchmarks measure metadata phases
// directly; the GC walks trees through it).
func (c *Client) Meta() *mstore.Client { return c.ms }

// VersionManager exposes the typed version manager client (a
// GroupClient; an unsharded deployment is its 1x1 degenerate case).
func (c *Client) VersionManager() *vmanager.GroupClient { return c.vm }

// Pool exposes the RPC pool (shared by auxiliary agents like the GC).
func (c *Client) Pool() *rpc.Pool { return c.pool }

// Tracer returns the tracer this client was configured with (nil when
// tracing is disabled). Auxiliary agents (repair, GC) root their own
// operations on it.
func (c *Client) Tracer() *trace.Tracer { return c.opts.Tracer }

// AllProviders lists every registered data provider (used by the GC to
// broadcast deletions).
func (c *Client) AllProviders(ctx context.Context) ([]pmanager.ProviderInfo, error) {
	d, err := pmanager.FetchProviders(ctx, c.pool, c.opts.PManagerAddr)
	return d.Providers, err
}

// ClusterRedundancy returns the redundancy mode the provider manager
// advertised when this client connected (diagnostics; blobctl stats
// prints it).
func (c *Client) ClusterRedundancy() erasure.Redundancy {
	c.provMu.RLock()
	defer c.provMu.RUnlock()
	return c.clusterRed
}

// creationRedundancy is the mode CreateBlob uses: the client's explicit
// option (an rs geometry, or a pinned "replicate" overriding an
// advertised rs default), else the deployment's advertised mode.
func (c *Client) creationRedundancy() erasure.Redundancy {
	if c.opts.Redundancy.IsRS() || c.opts.Redundancy.Pinned {
		return erasure.Redundancy{K: c.opts.Redundancy.K, M: c.opts.Redundancy.M}
	}
	return c.ClusterRedundancy()
}

// refreshProviders refetches the provider ID -> address map and the
// advertised redundancy mode.
func (c *Client) refreshProviders(ctx context.Context) error {
	d, err := pmanager.FetchProviders(ctx, c.pool, c.opts.PManagerAddr)
	if err != nil {
		return fmt.Errorf("core: fetch providers: %w", err)
	}
	c.provMu.Lock()
	for _, p := range d.Providers {
		c.providers[p.ID] = p.Addr
	}
	c.clusterRed = d.Redundancy
	c.provMu.Unlock()
	return nil
}

// providerAddr resolves a provider ID, refreshing the directory once on a
// miss (a new provider may have joined since the last refresh).
func (c *Client) providerAddr(ctx context.Context, id uint32) (string, error) {
	c.provMu.RLock()
	addr, ok := c.providers[id]
	c.provMu.RUnlock()
	if ok {
		return addr, nil
	}
	if err := c.refreshProviders(ctx); err != nil {
		return "", err
	}
	c.provMu.RLock()
	addr, ok = c.providers[id]
	c.provMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("core: unknown provider id %d", id)
	}
	return addr, nil
}

// cachedProviderAddr resolves a provider ID from the local map only —
// no directory refresh — for best-effort paths (hedges, breaker-aware
// routing) that must never add a round trip of their own.
func (c *Client) cachedProviderAddr(id uint32) (string, bool) {
	c.provMu.RLock()
	addr, ok := c.providers[id]
	c.provMu.RUnlock()
	return addr, ok
}

// observeFetch feeds one page-fetch outcome into the latency tracker
// (successes only — a failure's duration says nothing about the
// provider's service time) and the pool's circuit breaker for the
// provider. The async fetch fan-outs bypass the pool's synchronous
// call path, so this is how their evidence reaches both.
func (c *Client) observeFetch(addr string, err error, d time.Duration) {
	if err == nil {
		c.lat.observe(addr, d)
	}
	c.pool.Observe(addr, err, d)
}

// endRoot completes a traced operation's root span and, when the
// operation crossed the slow threshold, dumps the locally recorded
// span tree to the log with its byte counts and retry/degraded
// annotations. All no-op for untraced (nil op) operations.
func (c *Client) endRoot(op *trace.Op, d time.Duration, err error) {
	op.EndErr(err)
	if op == nil {
		return
	}
	th := c.opts.SlowThreshold
	if th <= 0 || d < th {
		return
	}
	logf := c.opts.Logf
	if logf == nil {
		logf = log.Printf
	}
	tree := trace.BuildTree(c.opts.Tracer.SpansFor(op.TraceID()))
	logf("core: slow request: %v (threshold %v), trace %016x\n%s",
		d, th, op.TraceID(), trace.FormatTree(tree))
}

// newWriteID generates a globally unique write identity.
func newWriteID() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("core: write id: %w", err)
	}
	id := binary.LittleEndian.Uint64(b[:])
	if id == 0 {
		id = 1 // zero is reserved for "zero page"
	}
	return id, nil
}

// CreateBlob allocates a new blob (ALLOC): capacityBytes of virtual,
// allocate-on-write storage in pageSize pages, in the client's
// effective redundancy mode (Options.Redundancy, else the deployment's
// advertised mode). The mode is recorded in the blob's metadata and
// fixed for its lifetime.
func (c *Client) CreateBlob(ctx context.Context, pageSize, capacityBytes uint64) (*Blob, error) {
	red := c.creationRedundancy()
	id, err := c.vm.CreateBlob(ctx, pageSize, capacityBytes, red)
	if err != nil {
		return nil, err
	}
	return &Blob{
		c: c, id: id, pageSize: pageSize, totalPages: capacityBytes / pageSize, red: red,
	}, nil
}

// OpenBlob binds to an existing blob; its redundancy mode comes from
// the metadata recorded at creation, never from this client's options.
func (c *Client) OpenBlob(ctx context.Context, id uint64) (*Blob, error) {
	info, err := c.vm.Info(ctx, id)
	if err != nil {
		return nil, err
	}
	return &Blob{
		c: c, id: id, pageSize: info.PageSize, totalPages: info.TotalPages, red: info.Redundancy,
	}, nil
}

// Blob is a handle on one versioned binary string.
type Blob struct {
	c          *Client
	id         uint64
	pageSize   uint64
	totalPages uint64
	red        erasure.Redundancy
}

// Redundancy returns the blob's fixed redundancy mode.
func (b *Blob) Redundancy() erasure.Redundancy { return b.red }

// ID returns the blob's globally unique identifier.
func (b *Blob) ID() uint64 { return b.id }

// PageSize returns the blob's page size in bytes.
func (b *Blob) PageSize() uint64 { return b.pageSize }

// CapacityBytes returns the blob's maximum size.
func (b *Blob) CapacityBytes() uint64 { return b.totalPages * b.pageSize }

// Latest returns the newest published version and its size in bytes.
func (b *Blob) Latest(ctx context.Context) (meta.Version, uint64, error) {
	return b.c.vm.Latest(ctx, b.id)
}

// VersionSize returns the logical size of a version in bytes.
func (b *Blob) VersionSize(ctx context.Context, v meta.Version) (uint64, error) {
	_, size, err := b.c.vm.VersionInfo(ctx, b.id, v)
	return size, err
}

// WaitVersion blocks until version v is published (readers pacing
// writers), polling the version manager.
func (b *Blob) WaitVersion(ctx context.Context, v meta.Version) error {
	backoff := time.Millisecond
	for {
		latest, _, err := b.c.vm.Latest(ctx, b.id)
		if err != nil {
			return err
		}
		if latest >= v {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 50*time.Millisecond {
			backoff *= 2
		}
	}
}
