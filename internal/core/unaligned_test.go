package core_test

import (
	"bytes"
	"context"
	"io"
	"testing"
	"testing/quick"

	"blob/internal/cluster"
)

func TestUnalignedReadAt(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	data := pattern(3, 4*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Arbitrary unaligned windows must match the flat content.
	cases := []struct{ off, n int }{
		{0, 10}, {1, 1}, {pageSize - 3, 7}, {pageSize + 5, 2 * pageSize},
		{3*pageSize - 1, pageSize + 1}, {17, 3*pageSize - 40},
	}
	for _, tc := range cases {
		got := make([]byte, tc.n)
		if err := b.ReadAt(ctx, got, uint64(tc.off), v); err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", tc.off, tc.n, err)
		}
		if !bytes.Equal(got, data[tc.off:tc.off+tc.n]) {
			t.Errorf("ReadAt(%d,%d) mismatch", tc.off, tc.n)
		}
	}
	// Beyond capacity fails.
	if err := b.ReadAt(ctx, make([]byte, 10), 16*pageSize-5, v); err == nil {
		t.Error("ReadAt past capacity accepted")
	}
}

func TestUnalignedWriteAtRMW(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	base := pattern(1, 4*pageSize)
	v1, err := b.Write(ctx, base, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Patch an unaligned window straddling two pages.
	patch := pattern(200, pageSize)
	off := uint64(pageSize + pageSize/2)
	v2, err := b.WriteAt(ctx, patch, off, v1)
	if err != nil {
		t.Fatal(err)
	}

	want := append([]byte(nil), base...)
	copy(want[off:], patch)
	got := make([]byte, 4*pageSize)
	if _, err := b.Read(ctx, got, 0, v2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("RMW composition mismatch")
	}
	// Base version unchanged.
	if _, err := b.Read(ctx, got, 0, v1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("base snapshot mutated by WriteAt")
	}
}

func TestWriteAtOnFreshBlobZeroFills(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	v, err := b.WriteAt(ctx, []byte("xyz"), uint64(pageSize)-1, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2*pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}
	if got[pageSize-2] != 0 || got[pageSize-1] != 'x' || got[pageSize] != 'y' || got[pageSize+2] != 0 {
		t.Errorf("boundary bytes: %v", got[pageSize-2:pageSize+3])
	}
}

func TestUnalignedQuickOracle(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	const totalPages = 8
	b, _ := c.CreateBlob(ctx, pageSize, totalPages*pageSize)
	flat := make([]byte, totalPages*pageSize)
	var latest uint64

	// Property: after any sequence of unaligned writes, an unaligned
	// read of any window equals the flat model.
	step := func(offRaw, lenRaw uint16, seed byte) bool {
		off := uint64(offRaw) % (totalPages*pageSize - 1)
		n := uint64(lenRaw)%(totalPages*pageSize-off-1) + 1
		data := pattern(seed, int(n))
		v, err := b.WriteAt(ctx, data, off, latest)
		if err != nil {
			t.Logf("WriteAt(%d,%d): %v", off, n, err)
			return false
		}
		latest = v
		copy(flat[off:], data)

		roff := uint64(offRaw/3) % (totalPages*pageSize - 1)
		rn := uint64(lenRaw/7)%(totalPages*pageSize-roff-1) + 1
		got := make([]byte, rn)
		if err := b.ReadAt(ctx, got, roff, latest); err != nil {
			t.Logf("ReadAt: %v", err)
			return false
		}
		return bytes.Equal(got, flat[roff:roff+rn])
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(step, cfg); err != nil {
		t.Error(err)
	}
}

func TestReaderSequentialAndSeek(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	data := pattern(9, 3*pageSize)
	v, _ := b.Write(ctx, data, 0)

	r, err := b.NewReader(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 3*pageSize || r.Version() != v {
		t.Fatalf("reader meta: size %d v %d", r.Size(), r.Version())
	}

	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("sequential read mismatch")
	}

	// Seek back and re-read a window.
	if _, err := r.Seek(100, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	win := make([]byte, 50)
	if _, err := io.ReadFull(r, win); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(win, data[100:150]) {
		t.Error("post-seek read mismatch")
	}

	// SeekEnd and EOF.
	if _, err := r.Seek(0, io.SeekEnd); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(win); err != io.EOF {
		t.Errorf("read at end = %v, want EOF", err)
	}
	if _, err := r.Seek(-10, io.SeekStart); err == nil {
		t.Error("negative seek accepted")
	}
}

func TestReaderReadAtContract(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	data := pattern(4, 2*pageSize)
	v, _ := b.Write(ctx, data, 0)
	r, err := b.NewReader(ctx, v)
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 100)
	n, err := r.ReadAt(buf, int64(2*pageSize)-50)
	if n != 50 || err != io.EOF {
		t.Errorf("short ReadAt = (%d, %v), want (50, EOF)", n, err)
	}
	if !bytes.Equal(buf[:50], data[2*pageSize-50:]) {
		t.Error("short ReadAt content mismatch")
	}
	if _, err := r.ReadAt(buf, int64(2*pageSize)+10); err != io.EOF {
		t.Errorf("ReadAt past end = %v, want EOF", err)
	}
	if _, err := r.ReadAt(buf, -1); err == nil {
		t.Error("negative offset accepted")
	}
}

func TestReaderWriteTo(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 256*pageSize)
	data := pattern(7, 150*pageSize) // spans multiple WriteTo chunks
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := b.NewReader(ctx, v)
	if err != nil {
		t.Fatal(err)
	}
	var sink bytes.Buffer
	n, err := r.WriteTo(&sink)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) || !bytes.Equal(sink.Bytes(), data) {
		t.Fatalf("WriteTo copied %d bytes, equal=%v", n, bytes.Equal(sink.Bytes(), data))
	}
}

func TestReaderOfUnpublishedVersionFails(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	if _, err := b.NewReader(ctx, 5); err == nil {
		t.Error("reader over unassigned version accepted")
	}
}

func TestReaderZeroVersion(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	r, err := b.NewReader(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Version 0 has logical size 0: immediate EOF.
	if _, err := r.Read(make([]byte, 10)); err != io.EOF {
		t.Errorf("zero-version read = %v, want EOF", err)
	}
}
