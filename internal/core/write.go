package core

import (
	"context"
	"fmt"
	"time"

	"blob/internal/meta"
	"blob/internal/pmanager"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/trace"
	"blob/internal/vmanager"
	"blob/internal/wire"
)

// WriteResult reports a completed write and its phase timings, which the
// experiment harness uses to separate metadata overhead (Figure 3a/3b)
// from data transfer.
type WriteResult struct {
	// Version is the write's assigned (and published) version number.
	Version meta.Version
	// Offset is the final byte offset (== the requested offset, except
	// for appends where the version manager resolves it).
	Offset uint64
	// DataTime covers provider allocation and page upload.
	DataTime time.Duration
	// AssignTime covers the version manager round trip.
	AssignTime time.Duration
	// MetaTime covers building and storing the metadata tree.
	MetaTime time.Duration
	// CommitTime covers the blocking publication wait.
	CommitTime time.Duration
}

// Write implements the paper's WRITE primitive: patch the blob with buf
// at offset, producing and publishing a new version. buf must be
// page-aligned in offset and length. When Write returns, the version is
// published and immediately readable.
func (b *Blob) Write(ctx context.Context, buf []byte, offset uint64) (meta.Version, error) {
	res, err := b.WriteDetailed(ctx, buf, offset)
	return res.Version, err
}

// Append writes buf at the current end of the blob, returning the new
// version and the offset the data landed at. Concurrent appends are
// serialized by the version manager and never overlap.
func (b *Blob) Append(ctx context.Context, buf []byte) (meta.Version, uint64, error) {
	res, err := b.writeInternal(ctx, buf, 0, true)
	return res.Version, res.Offset, err
}

// WriteDetailed is Write with phase timings.
func (b *Blob) WriteDetailed(ctx context.Context, buf []byte, offset uint64) (WriteResult, error) {
	return b.writeInternal(ctx, buf, offset, false)
}

func (b *Blob) writeInternal(ctx context.Context, buf []byte, offset uint64, isAppend bool) (res WriteResult, err error) {
	start := time.Now()
	ctx, root := b.c.opts.Tracer.Root(ctx, "core.WriteBlob")
	if root != nil {
		root.AddBytes(int64(len(buf)))
		defer func() { b.c.endRoot(root, time.Since(start), err) }()
	}
	if len(buf) == 0 || uint64(len(buf))%b.pageSize != 0 {
		return res, fmt.Errorf("core: write length %d not a positive multiple of page size %d", len(buf), b.pageSize)
	}
	if !isAppend && offset%b.pageSize != 0 {
		return res, fmt.Errorf("core: write offset %d not page aligned", offset)
	}
	npages := uint64(len(buf)) / b.pageSize
	writeID, err := newWriteID()
	if err != nil {
		return res, err
	}

	// Phases 1 and 2 are independent — the page push is keyed by the
	// client-generated write identity, not the version number — so the
	// pipelined protocol runs the version-manager round trip (Phase 2)
	// concurrently with the page/parity fan-out (Phase 1) and the write
	// pays max(push, assign) instead of their sum. The legacy path keeps
	// the paper's strictly sequential ordering for the ablation.
	type assignResult struct {
		asg vmanager.Assignment
		err error
		dur time.Duration
	}
	assign := func() assignResult {
		t := time.Now()
		actx, aop := trace.Start(ctx, "write.assign")
		asg, err := b.c.vm.AssignVersion(actx, b.id, writeID, offset, uint64(len(buf)), isAppend)
		aop.EndErr(err)
		return assignResult{asg, err, time.Since(t)}
	}
	pipelined := !b.c.opts.LegacyDataPath
	assignCh := make(chan assignResult, 1)
	if pipelined {
		go func() { assignCh <- assign() }()
	}

	// Phase 1 (paper §III.B): get providers from the provider manager,
	// then push all pages in parallel, batched per provider. The two
	// redundancy modes differ only in what lands where: replication
	// pushes r copies of each page, rs(k,m) pushes each page once plus
	// m parity pages per stripe (docs/erasure.md). Both produce a
	// leafAt function the metadata build below consumes.
	t0 := time.Now()
	pctx, pushOp := trace.Start(ctx, "write.push")
	pushOp.AddBytes(int64(len(buf)))
	var leafAt func(rel uint64) meta.LeafData
	var pushErr error
	if b.red.IsRS() {
		refs, err := b.putStriped(pctx, writeID, buf)
		if err != nil {
			pushErr = err
		} else {
			k := uint64(b.red.K)
			leafAt = func(rel uint64) meta.LeafData {
				ref := refs[rel/k]
				slot := int(uint32(rel) - ref.FirstRel)
				return meta.LeafData{
					Write:     writeID,
					RelPage:   uint32(rel),
					Providers: []uint32{ref.Provs[slot]},
					Checksum:  ref.Sums[slot],
					Stripe:    ref,
				}
			}
		}
	} else {
		alloc, err := b.allocateProviders(pctx, int(npages), b.c.opts.DataReplicas)
		if err != nil {
			pushErr = err
		} else if checksums, err := b.putPages(pctx, writeID, buf, alloc); err != nil {
			pushErr = err
		} else {
			r := b.c.opts.DataReplicas
			if r > len(alloc.IDs)/int(npages) {
				r = len(alloc.IDs) / int(npages)
			}
			leafAt = func(rel uint64) meta.LeafData {
				return meta.LeafData{
					Write:     writeID,
					RelPage:   uint32(rel),
					Providers: alloc.IDs[int(rel)*r : (int(rel)+1)*r],
					Checksum:  checksums[rel],
				}
			}
		}
	}
	pushOp.EndErr(pushErr)
	if pushErr != nil {
		if pipelined {
			// The concurrently assigned version will never commit; abort
			// it so the version manager need not wait out the dead-writer
			// deadline before publishing later writes.
			if ar := <-assignCh; ar.err == nil {
				abortCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
				_ = b.c.vm.Abort(abortCtx, b.id, ar.asg.Version)
				cancel()
			}
		}
		return res, pushErr
	}
	res.DataTime = time.Since(t0)

	// Phase 2: the version number and precomputed border versions
	// (already in flight on the pipelined path).
	var ar assignResult
	if pipelined {
		ar = <-assignCh
	} else {
		ar = assign()
	}
	if ar.err != nil {
		return res, ar.err
	}
	asg := ar.asg
	res.AssignTime = ar.dur
	res.Version = asg.Version
	res.Offset = asg.Offset
	firstPage := asg.Offset / b.pageSize
	wr := meta.PageRange{First: firstPage, Count: npages}

	// Phase 3: build the partial tree in complete isolation and store it.
	t0 = time.Now()
	mctx, metaOp := trace.Start(ctx, "write.meta")
	nodes, err := meta.Build(b.id, asg.Version, b.totalPages, wr,
		meta.BorderResolver(asg.Borders),
		func(page uint64) (meta.LeafData, error) {
			return leafAt(page - firstPage), nil
		})
	if err != nil {
		metaOp.EndErr(err)
		return res, err
	}
	metaOp.Notef("%d nodes", len(nodes))
	if err := b.c.ms.StoreNodes(mctx, nodes); err != nil {
		metaOp.EndErr(err)
		return res, err
	}
	metaOp.End()
	res.MetaTime = time.Since(t0)
	b.c.MetaWriteTime.Observe(res.MetaTime)

	// Phase 4: report success; block until published so the returned
	// version is immediately readable (the paper's liveness guarantee
	// makes this wait finite).
	t0 = time.Now()
	cctx, commitOp := trace.Start(ctx, "write.commit")
	if _, err := b.c.vm.Commit(cctx, b.id, asg.Version, true); err != nil {
		commitOp.EndErr(err)
		return res, err
	}
	commitOp.End()
	res.CommitTime = time.Since(t0)

	b.c.Writes.Inc()
	b.c.BytesWritten.Add(int64(len(buf)))
	b.c.WriteLatency.ObserveExemplar(time.Since(start), root.TraceID())
	return res, nil
}

// allocateProviders asks the provider manager for placement: r distinct
// providers for each of npages groups (pages under replication, whole
// stripes under rs).
func (b *Blob) allocateProviders(ctx context.Context, npages, r int) (pmanager.Allocation, error) {
	body := pmanager.EncodeAllocate(npages, r)
	resp, err := b.c.pool.Call(ctx, b.c.opts.PManagerAddr, pmanager.MAllocate, body)
	if err != nil {
		return pmanager.Allocation{}, fmt.Errorf("core: allocate providers: %w", err)
	}
	alloc, err := pmanager.DecodeAllocation(resp)
	if err != nil {
		return pmanager.Allocation{}, err
	}
	// Cache any addresses the manager told us about.
	b.c.provMu.Lock()
	for id, addr := range alloc.Addrs {
		b.c.providers[id] = addr
	}
	b.c.provMu.Unlock()
	return alloc, nil
}

// putPages uploads all pages in parallel, one batched request per
// provider, and returns the per-page checksums. On the default path the
// request bodies are scatter-gather segments aliasing buf (zero copies
// on the client; buf stays immutable until the Waits below return) and
// the checksums are computed by parallel workers; the legacy path keeps
// the contiguous-encode codec for the ablation.
func (b *Blob) putPages(ctx context.Context, writeID uint64, buf []byte, alloc pmanager.Allocation) ([]uint64, error) {
	npages := uint64(len(buf)) / b.pageSize
	r := len(alloc.IDs) / int(npages)
	legacy := b.c.opts.LegacyDataPath

	var checksums []uint64
	if legacy {
		checksums = make([]uint64, npages)
		for p := uint64(0); p < npages; p++ {
			checksums[p] = wire.Checksum64(buf[p*b.pageSize : (p+1)*b.pageSize])
		}
	} else {
		checksums = checksumPages(buf, b.pageSize)
	}

	type batch struct {
		rels  []uint32
		datas [][]byte
	}
	// Pre-count each provider's share so the batch slices allocate
	// exactly once instead of growing append by append.
	counts := make(map[uint32]int, 8)
	for _, id := range alloc.IDs[:int(npages)*r] {
		counts[id]++
	}
	batches := make(map[uint32]*batch, len(counts))
	for p := uint64(0); p < npages; p++ {
		data := buf[p*b.pageSize : (p+1)*b.pageSize]
		for j := 0; j < r; j++ {
			id := alloc.IDs[int(p)*r+j]
			bt := batches[id]
			if bt == nil {
				n := counts[id]
				bt = &batch{rels: make([]uint32, 0, n), datas: make([][]byte, 0, n)}
				batches[id] = bt
			}
			bt.rels = append(bt.rels, uint32(p))
			bt.datas = append(bt.datas, data)
		}
	}

	// Async fan-out: the frame header carries whatever trace the write
	// operation is running under (zero tc emits legacy frames).
	tc := trace.FromContext(ctx)
	pend := make([]*rpc.Pending, 0, len(batches))
	for id, bt := range batches {
		addr, err := b.c.providerAddr(ctx, id)
		if err != nil {
			return nil, err
		}
		if legacy {
			body := provider.EncodePutPages(b.id, writeID, bt.rels, bt.datas)
			pend = append(pend, b.c.pool.GoT(addr, provider.MPutPages, body, tc))
		} else {
			segs := provider.EncodePutPagesVec(b.id, writeID, bt.rels, bt.datas)
			pend = append(pend, b.c.pool.GoVecT(addr, provider.MPutPages, segs, tc))
		}
	}
	for i, p := range pend {
		if _, err := p.Wait(ctx); err != nil {
			// Drain from i, not i+1: a ctx-derived error means this very
			// call may still be queued with segments aliasing buf.
			drainPending(pend[i:])
			return nil, fmt.Errorf("core: store pages: %w", err)
		}
		if !legacy {
			p.Release()
		}
	}
	return checksums, nil
}

// drainPending waits out vectored calls whose body segments alias the
// caller's buffer before an error return hands that buffer back to the
// caller. Waiting detached from the request context is deliberate: a
// frame sitting in a connection's send queue is flushed (or failed)
// regardless of the caller's deadline, and returning earlier would let
// the caller mutate memory the writer goroutine is still reading.
func drainPending(pend []*rpc.Pending) {
	for _, p := range pend {
		_, _ = p.Wait(context.Background())
	}
}
