package core_test

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/meta"
)

const pageSize = 4 << 10 // small pages keep tests fast

func launch(t testing.TB, cfg cluster.Config) (*cluster.Cluster, *core.Client) {
	t.Helper()
	cl, err := cluster.Launch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	c, err := cl.NewClient(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return cl, c
}

func pattern(seed byte, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = seed + byte(i*7)
	}
	return buf
}

func TestWriteReadRoundTrip(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}

	data := pattern(3, 4*pageSize)
	v, err := b.Write(ctx, data, 8*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("version = %d, want 1", v)
	}

	got := make([]byte, 4*pageSize)
	latest, err := b.Read(ctx, got, 8*pageSize, v)
	if err != nil {
		t.Fatal(err)
	}
	if latest != 1 {
		t.Errorf("latest = %d, want 1", latest)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read returned different bytes than written")
	}
}

func TestZeroFillSemantics(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)

	// Version 0 is the all-zero string (readable without any write).
	got := pattern(9, 2*pageSize)
	if _, err := b.Read(ctx, got, 4*pageSize, meta.ZeroVersion); err != nil {
		t.Fatal(err)
	}
	for i, x := range got {
		if x != 0 {
			t.Fatalf("version-0 byte %d = %d, want 0", i, x)
		}
	}

	// After writing pages [4,6), surrounding pages still read zero.
	data := pattern(5, 2*pageSize)
	v, err := b.Write(ctx, data, 4*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	wide := make([]byte, 6*pageSize)
	if _, err := b.Read(ctx, wide, 2*pageSize, v); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*pageSize; i++ {
		if wide[i] != 0 {
			t.Fatalf("pre-gap byte %d nonzero", i)
		}
	}
	if !bytes.Equal(wide[2*pageSize:4*pageSize], data) {
		t.Error("written region mismatch")
	}
	for i := 4 * pageSize; i < 6*pageSize; i++ {
		if wide[i] != 0 {
			t.Fatalf("post-gap byte %d nonzero", i)
		}
	}
}

func TestSnapshotIsolation(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)

	d1 := pattern(1, 2*pageSize)
	d2 := pattern(2, 2*pageSize)
	v1, err := b.Write(ctx, d1, 0)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := b.Write(ctx, d2, 0)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]byte, 2*pageSize)
	if _, err := b.Read(ctx, got, 0, v1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, d1) {
		t.Error("v1 snapshot changed after v2 write")
	}
	if _, err := b.Read(ctx, got, 0, v2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, d2) {
		t.Error("v2 snapshot wrong")
	}
}

func TestPartialOverwriteComposition(t *testing.T) {
	_, c := launch(t, cluster.Config{DataProviders: 3, MetaProviders: 3})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)

	base := pattern(10, 8*pageSize)
	if _, err := b.Write(ctx, base, 0); err != nil {
		t.Fatal(err)
	}
	patch := pattern(99, 2*pageSize)
	v2, err := b.Write(ctx, patch, 3*pageSize)
	if err != nil {
		t.Fatal(err)
	}

	got := make([]byte, 8*pageSize)
	if _, err := b.Read(ctx, got, 0, v2); err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), base...)
	copy(want[3*pageSize:], patch)
	if !bytes.Equal(got, want) {
		t.Fatal("v2 is not base+patch composition")
	}
}

func TestReadUnpublishedFails(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	got := make([]byte, pageSize)
	if _, err := b.Read(ctx, got, 0, 3); !errors.Is(err, core.ErrNotPublished) {
		t.Errorf("err = %v, want ErrNotPublished", err)
	}
}

func TestAlignmentValidation(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	if _, err := b.Write(ctx, make([]byte, 100), 0); err == nil {
		t.Error("unaligned write length accepted")
	}
	if _, err := b.Write(ctx, make([]byte, pageSize), 33); err == nil {
		t.Error("unaligned write offset accepted")
	}
	if _, err := b.Read(ctx, make([]byte, 100), 0, 0); err == nil {
		t.Error("unaligned read length accepted")
	}
	if _, err := b.Write(ctx, make([]byte, pageSize), 16*pageSize); err == nil {
		t.Error("write beyond capacity accepted")
	}
}

func TestAppendSequence(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)

	var want []byte
	for i := 0; i < 5; i++ {
		chunk := pattern(byte(i+1), pageSize)
		_, off, err := b.Append(ctx, chunk)
		if err != nil {
			t.Fatal(err)
		}
		if off != uint64(i)*pageSize {
			t.Errorf("append %d landed at %d, want %d", i, off, i*pageSize)
		}
		want = append(want, chunk...)
	}
	v, size, err := b.Latest(ctx)
	if err != nil || size != 5*pageSize {
		t.Fatalf("latest = v%d size %d err %v", v, size, err)
	}
	got := make([]byte, 5*pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("appended content mismatch")
	}
}

func TestConcurrentAppendsNeverOverlap(t *testing.T) {
	_, c := launch(t, cluster.Config{DataProviders: 4, MetaProviders: 4})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 256*pageSize)

	const appenders = 8
	offsets := make([]uint64, appenders)
	var wg sync.WaitGroup
	for i := 0; i < appenders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			chunk := pattern(byte(i), pageSize)
			_, off, err := b.Append(ctx, chunk)
			if err != nil {
				t.Error(err)
				return
			}
			offsets[i] = off
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for _, off := range offsets {
		if seen[off] {
			t.Fatalf("two appends landed at offset %d", off)
		}
		seen[off] = true
	}
	_, size, _ := b.Latest(ctx)
	if size != appenders*pageSize {
		t.Errorf("final size = %d, want %d", size, appenders*pageSize)
	}
}

func TestConcurrentWritersGlobalSerializability(t *testing.T) {
	// W writers patch overlapping ranges concurrently. Afterwards, every
	// published version must equal the successive application of patches
	// 1..v — verified by replaying the version manager's history.
	cl, c := launch(t, cluster.Config{DataProviders: 4, MetaProviders: 4})
	ctx := context.Background()
	const totalPages = 16
	b, err := c.CreateBlob(ctx, pageSize, totalPages*pageSize)
	if err != nil {
		t.Fatal(err)
	}

	const writers = 10
	patches := make([][]byte, writers+1)
	versionOf := make([]meta.Version, writers+1)
	offsets := make([]uint64, writers+1)
	var wg sync.WaitGroup
	for i := 1; i <= writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			wcli, err := cl.NewClient(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			defer wcli.Close()
			wb, err := wcli.OpenBlob(ctx, b.ID())
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(i)))
			np := rng.Intn(4) + 1
			off := uint64(rng.Intn(totalPages-np)) * pageSize
			data := pattern(byte(i*17), np*pageSize)
			v, err := wb.Write(ctx, data, off)
			if err != nil {
				t.Error(err)
				return
			}
			patches[i] = data
			versionOf[i] = v
			offsets[i] = off
		}(i)
	}
	wg.Wait()

	// Replay: apply patches in version order onto a flat model.
	byVersion := make(map[meta.Version]int)
	for i := 1; i <= writers; i++ {
		byVersion[versionOf[i]] = i
	}
	flat := make([]byte, totalPages*pageSize)
	for v := meta.Version(1); v <= writers; v++ {
		i, ok := byVersion[v]
		if !ok {
			t.Fatalf("no writer got version %d", v)
		}
		copy(flat[offsets[i]:], patches[i])
		got := make([]byte, totalPages*pageSize)
		if _, err := b.Read(ctx, got, 0, v); err != nil {
			t.Fatalf("read v%d: %v", v, err)
		}
		if !bytes.Equal(got, flat) {
			t.Fatalf("v%d does not equal successive application of patches 1..%d", v, v)
		}
	}
}

func TestReadersConcurrentWithWriters(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 4, MetaProviders: 4})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)

	seed := pattern(1, 8*pageSize)
	if _, err := b.Write(ctx, seed, 0); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Writer keeps producing versions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 2; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := b.Write(ctx, pattern(byte(i), 2*pageSize), uint64(i%4)*2*pageSize); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Readers continuously read the latest version; every read must be
	// internally consistent (a snapshot, not a torn mix).
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rcli, err := cl.NewClient(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			defer rcli.Close()
			rb, err := rcli.OpenBlob(ctx, b.ID())
			if err != nil {
				t.Error(err)
				return
			}
			buf := make([]byte, 2*pageSize)
			for i := 0; i < 30; i++ {
				latest, _, err := rb.Latest(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := rb.Read(ctx, buf, 0, latest); err != nil {
					t.Errorf("read v%d: %v", latest, err)
					return
				}
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestReplicatedReadSurvivesProviderCrash(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 4, MetaProviders: 4, DataReplicas: 2})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 32*pageSize)
	data := pattern(7, 8*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Crash one data provider node.
	cl.DataServers[0].Close()

	got := make([]byte, 8*pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatalf("read after provider crash: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data corrupted after failover")
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 2, MetaProviders: 2, DataReplicas: 2})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	data := pattern(8, pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the page on every provider that holds it: read must fail
	// rather than return bad bytes.
	corrupted := 0
	for _, st := range cl.DataStores {
		st.ForEachPage(func(_, _ uint64, _ uint32, data []byte) {
			data[0] ^= 0xff
			corrupted++
		})
	}
	if corrupted == 0 {
		t.Fatal("test bug: no pages corrupted")
	}
	got := make([]byte, pageSize)
	if _, err := b.Read(ctx, got, 0, v); err == nil {
		t.Fatal("read of corrupted data succeeded")
	}
}

func TestChecksumFailoverToGoodReplica(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 2, MetaProviders: 2, DataReplicas: 2})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	data := pattern(8, pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt only the FIRST provider's copy: the read must silently
	// fail over to the intact replica.
	cl.DataStores[0].ForEachPage(func(_, _ uint64, _ uint32, d []byte) {
		d[0] ^= 0xff
	})
	got := make([]byte, pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatalf("read with one corrupt replica: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover returned wrong bytes")
	}
}

func TestMetadataReplicationSurvivesMetaCrash(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 3, MetaProviders: 3, MetaReplicas: 2, CacheNodes: 0})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	data := pattern(4, 4*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	cl.MetaServers[1].Close()
	got := make([]byte, 4*pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatalf("read after metadata node crash: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("data mismatch after metadata failover")
	}
}

func TestOpenBlobFromSecondClient(t *testing.T) {
	cl, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	data := pattern(6, pageSize)
	v, _ := b.Write(ctx, data, 0)

	c2, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	b2, err := c2.OpenBlob(ctx, b.ID())
	if err != nil {
		t.Fatal(err)
	}
	if b2.PageSize() != pageSize || b2.CapacityBytes() != 16*pageSize {
		t.Errorf("opened geometry: page %d cap %d", b2.PageSize(), b2.CapacityBytes())
	}
	got := make([]byte, pageSize)
	if _, err := b2.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-client read mismatch")
	}
}

func TestOpenUnknownBlob(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	if _, err := c.OpenBlob(context.Background(), 999); err == nil {
		t.Fatal("open of unknown blob should fail")
	}
}

func TestWaitVersion(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	go func() {
		time.Sleep(20 * time.Millisecond)
		b.Write(ctx, pattern(1, pageSize), 0)
	}()
	wctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := b.WaitVersion(wctx, 1); err != nil {
		t.Fatal(err)
	}
}

func TestReadMetaOnly(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if _, err := b.Write(ctx, pattern(2, 8*pageSize), 0); err != nil {
		t.Fatal(err)
	}
	leaves, err := b.ReadMeta(ctx, 2*pageSize, 4*pageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 4 {
		t.Fatalf("leaves = %d, want 4", len(leaves))
	}
	for i, l := range leaves {
		if l.Page != uint64(2+i) || l.Leaf.Write == 0 {
			t.Errorf("leaf %d = %+v", i, l)
		}
	}
}

func TestWriteDetailedPhases(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	res, err := b.WriteDetailed(ctx, pattern(1, 2*pageSize), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 1 {
		t.Errorf("version = %d", res.Version)
	}
	if res.MetaTime <= 0 || res.DataTime <= 0 {
		t.Errorf("phase timings missing: %+v", res)
	}
}

func TestManyVersionsDeepHistory(t *testing.T) {
	_, c := launch(t, cluster.Config{DataProviders: 4, MetaProviders: 4})
	ctx := context.Background()
	const totalPages = 32
	b, _ := c.CreateBlob(ctx, pageSize, totalPages*pageSize)

	rng := rand.New(rand.NewSource(77))
	flat := make([]byte, totalPages*pageSize)
	snapshots := [][]byte{append([]byte(nil), flat...)}
	const versions = 30
	for i := 1; i <= versions; i++ {
		np := rng.Intn(6) + 1
		off := uint64(rng.Intn(totalPages-np)) * pageSize
		data := pattern(byte(i*31), np*pageSize)
		if _, err := b.Write(ctx, data, off); err != nil {
			t.Fatal(err)
		}
		copy(flat[off:], data)
		snapshots = append(snapshots, append([]byte(nil), flat...))
	}
	// Spot-check old versions remain intact (space-shared, not copied).
	for _, v := range []meta.Version{1, versions / 2, versions} {
		got := make([]byte, totalPages*pageSize)
		if _, err := b.Read(ctx, got, 0, v); err != nil {
			t.Fatalf("read v%d: %v", v, err)
		}
		if !bytes.Equal(got, snapshots[v]) {
			t.Fatalf("v%d snapshot mismatch", v)
		}
	}
}

func TestClientMetrics(t *testing.T) {
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 16*pageSize)
	b.Write(ctx, pattern(1, pageSize), 0)
	buf := make([]byte, pageSize)
	b.Read(ctx, buf, 0, 1)
	if c.Writes.Value() != 1 || c.Reads.Value() != 1 {
		t.Errorf("metrics: writes=%d reads=%d", c.Writes.Value(), c.Reads.Value())
	}
	if c.BytesWritten.Value() != pageSize || c.BytesRead.Value() != pageSize {
		t.Errorf("metrics bytes: %d/%d", c.BytesWritten.Value(), c.BytesRead.Value())
	}
}

func TestFig2ScenarioEndToEnd(t *testing.T) {
	// The paper's Figure 2(b) walked through versions 1..3 on a 4-page
	// blob; verify the end-to-end content of each snapshot.
	_, c := launch(t, cluster.Config{})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 4*pageSize)

	v1data := pattern(1, 4*pageSize)
	v2patch := pattern(2, pageSize)
	v3patch := pattern(3, pageSize)
	if _, err := b.Write(ctx, v1data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, v2patch, 1*pageSize); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Write(ctx, v3patch, 2*pageSize); err != nil {
		t.Fatal(err)
	}

	want := map[meta.Version][]byte{1: v1data}
	w2 := append([]byte(nil), v1data...)
	copy(w2[pageSize:], v2patch)
	want[2] = w2
	w3 := append([]byte(nil), w2...)
	copy(w3[2*pageSize:], v3patch)
	want[3] = w3

	for v, w := range want {
		got := make([]byte, 4*pageSize)
		if _, err := b.Read(ctx, got, 0, v); err != nil {
			t.Fatalf("read v%d: %v", v, err)
		}
		if !bytes.Equal(got, w) {
			t.Errorf("v%d content mismatch", v)
		}
	}
}
