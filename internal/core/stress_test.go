package core_test

import (
	"bytes"
	"context"
	"math/rand"
	"sync"
	"testing"

	"blob/internal/cluster"
	"blob/internal/gc"
	"blob/internal/meta"
)

// TestStressMixedWorkload runs writers, appenders and readers
// concurrently against one blob, then validates the complete version
// history against a flat reference model: every published version must
// equal the successive application of all patches up to it, in version
// order — the paper's global serializability — and a final garbage
// collection must preserve the surviving versions bit-for-bit.
func TestStressMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	cl, c := launch(t, cluster.Config{DataProviders: 5, MetaProviders: 5, DataReplicas: 2, CacheNodes: 0})
	ctx := context.Background()
	const totalPages = 64
	b, err := c.CreateBlob(ctx, pageSize, totalPages*pageSize)
	if err != nil {
		t.Fatal(err)
	}

	type patch struct {
		version meta.Version
		offset  uint64
		data    []byte
	}
	var mu sync.Mutex
	var patches []patch

	const (
		writers       = 6
		appenders     = 2
		writesEach    = 6
		appendsEach   = 3
		readerClients = 3
	)

	var wg sync.WaitGroup
	// Random-offset writers.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wc, err := cl.NewClient(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			defer wc.Close()
			wb, err := wc.OpenBlob(ctx, b.ID())
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(int64(w) * 131))
			for i := 0; i < writesEach; i++ {
				np := rng.Intn(5) + 1
				// Keep random writers inside the first half so appends
				// (second half) never collide with them in the model.
				off := uint64(rng.Intn(totalPages/2-np)) * pageSize
				data := pattern(byte(w*writesEach+i+1), np*pageSize)
				v, err := wb.Write(ctx, data, off)
				if err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
				mu.Lock()
				patches = append(patches, patch{version: v, offset: off, data: data})
				mu.Unlock()
			}
		}(w)
	}
	// Appenders: the version manager assigns their offsets.
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			ac, err := cl.NewClient(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			defer ac.Close()
			ab, err := ac.OpenBlob(ctx, b.ID())
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < appendsEach; i++ {
				data := pattern(byte(200+a*appendsEach+i), pageSize)
				v, off, err := ab.Append(ctx, data)
				if err != nil {
					t.Errorf("appender %d: %v", a, err)
					return
				}
				mu.Lock()
				patches = append(patches, patch{version: v, offset: off, data: data})
				mu.Unlock()
			}
		}(a)
	}
	// Readers: snapshot stability — reading the same version twice must
	// yield identical bytes even while writes race.
	for r := 0; r < readerClients; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rc, err := cl.NewClient(ctx)
			if err != nil {
				t.Error(err)
				return
			}
			defer rc.Close()
			rb, err := rc.OpenBlob(ctx, b.ID())
			if err != nil {
				t.Error(err)
				return
			}
			buf1 := make([]byte, 4*pageSize)
			buf2 := make([]byte, 4*pageSize)
			for i := 0; i < 10; i++ {
				latest, _, err := rb.Latest(ctx)
				if err != nil {
					t.Error(err)
					return
				}
				if latest == 0 {
					continue
				}
				if _, err := rb.Read(ctx, buf1, 0, latest); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if _, err := rb.Read(ctx, buf2, 0, latest); err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				if !bytes.Equal(buf1, buf2) {
					t.Errorf("reader %d: version %d unstable across reads", r, latest)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	// Validation: replay patches in version order against a flat model
	// and compare every published version.
	totalWrites := writers*writesEach + appenders*appendsEach
	latest, _, err := b.Latest(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if latest != meta.Version(totalWrites) {
		t.Fatalf("latest = %d, want %d", latest, totalWrites)
	}
	byVersion := make(map[meta.Version]patch, len(patches))
	for _, p := range patches {
		if _, dup := byVersion[p.version]; dup {
			t.Fatalf("two writes claim version %d", p.version)
		}
		byVersion[p.version] = p
	}
	flat := make([]byte, totalPages*pageSize)
	got := make([]byte, totalPages*pageSize)
	for v := meta.Version(1); v <= latest; v++ {
		p, ok := byVersion[v]
		if !ok {
			t.Fatalf("no writer holds version %d", v)
		}
		copy(flat[p.offset:], p.data)
		if _, err := b.Read(ctx, got, 0, v); err != nil {
			t.Fatalf("read v%d: %v", v, err)
		}
		if !bytes.Equal(got, flat) {
			t.Fatalf("v%d diverges from the serial replay", v)
		}
	}

	// Final GC below latest-2; survivors must be unchanged.
	horizon := latest - 2
	if _, err := gc.New(c).Collect(ctx, b.ID(), horizon); err != nil {
		t.Fatalf("gc: %v", err)
	}
	for v := horizon; v <= latest; v++ {
		p := byVersion[v]
		_ = p
		// Rebuild the model at version v.
		model := make([]byte, totalPages*pageSize)
		for u := meta.Version(1); u <= v; u++ {
			pu := byVersion[u]
			copy(model[pu.offset:], pu.data)
		}
		if _, err := b.Read(ctx, got, 0, v); err != nil {
			t.Fatalf("post-gc read v%d: %v", v, err)
		}
		if !bytes.Equal(got, model) {
			t.Fatalf("post-gc v%d corrupted", v)
		}
	}
	// Collected versions must now fail.
	if horizon > 1 {
		if _, err := b.Read(ctx, got, 0, 1); err == nil {
			t.Error("collected version still readable")
		}
	}
}
