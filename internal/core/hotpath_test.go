package core_test

// Tests for the zero-copy data path and the pipelined write protocol:
// legacy/vectored interoperability (either codec against the same
// providers), byte-identical round trips under concurrency (the -race
// gate the acceptance criteria name), and pipelined-write failure
// handling.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
)

// TestLegacyVectoredInterop writes with each codec and reads with the
// other: the wire format is shared, so pages written by either client
// must verify and round-trip through both read paths.
func TestLegacyVectoredInterop(t *testing.T) {
	cl, err := cluster.Launch(cluster.Config{DataProviders: 3, DataReplicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cl.Shutdown)
	ctx := context.Background()

	clients := make([]*core.Client, 2)
	for i, legacy := range []bool{false, true} {
		opts := cl.ClientOptions(fmt.Sprintf("interop%d", i))
		opts.LegacyDataPath = legacy
		c, err := core.NewClient(ctx, opts)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(c.Close)
		clients[i] = c
	}

	blob, err := clients[0].CreateBlob(ctx, pageSize, 256*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 3; round++ {
		writer := clients[round%2]
		reader := clients[(round+1)%2]
		wb, err := writer.OpenBlob(ctx, blob.ID())
		if err != nil {
			t.Fatal(err)
		}
		rb, err := reader.OpenBlob(ctx, blob.ID())
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 8*pageSize)
		rng.Read(data)
		off := uint64(round) * 16 * pageSize
		v, err := wb.Write(ctx, data, off)
		if err != nil {
			t.Fatalf("round %d write: %v", round, err)
		}
		got := make([]byte, len(data))
		if _, err := rb.Read(ctx, got, off, v); err != nil {
			t.Fatalf("round %d read: %v", round, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round %d: cross-codec round trip corrupted data", round)
		}
	}
}

// TestVectoredConcurrentRoundTrips is the -race gate on the pooled
// buffer + zero-copy path end to end: concurrent writers and readers
// over shared providers, every read verified byte-identical against
// what its writer stored.
func TestVectoredConcurrentRoundTrips(t *testing.T) {
	_, c := launch(t, cluster.Config{DataProviders: 4, MetaProviders: 2, DataReplicas: 2})
	ctx := context.Background()
	const workers = 6
	const rounds = 8
	blob, err := c.CreateBlob(ctx, pageSize, 256*pageSize) // next power of two above workers*rounds*4
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			data := make([]byte, 4*pageSize)
			got := make([]byte, 4*pageSize)
			for r := 0; r < rounds; r++ {
				rng.Read(data)
				off := uint64(w*rounds+r) * 4 * pageSize
				v, err := blob.Write(ctx, data, off)
				if err != nil {
					errs[w] = fmt.Errorf("worker %d round %d write: %w", w, r, err)
					return
				}
				if _, err := blob.Read(ctx, got, off, v); err != nil {
					errs[w] = fmt.Errorf("worker %d round %d read: %w", w, r, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs[w] = fmt.Errorf("worker %d round %d: bytes differ", w, r)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelinedWriteAbortsOnPushFailure pins the failure half of the
// overlapped protocol: when the page push fails, the client aborts the
// concurrently assigned version, the version manager's dead-writer
// repair (armed via RepairTimeout, as in any deployment running the
// pipelined protocol) immediately materializes the no-op patch, and
// later writes publish promptly instead of waiting out the deadline.
func TestPipelinedWriteAbortsOnPushFailure(t *testing.T) {
	_, c := launch(t, cluster.Config{
		DataProviders:    2,
		ProviderCapacity: 2 * pageSize,
		RepairTimeout:    30 * time.Second, // far above the test runtime: only the abort can trigger repair
	})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	// Oversized write: providers reject it (capacity), push fails after
	// AssignVersion already ran concurrently.
	big := pattern(1, 16*pageSize)
	if _, err := b.Write(ctx, big, 0); err == nil {
		t.Fatal("oversized write succeeded, want capacity failure")
	}
	// A following small write must assign and publish without waiting on
	// the 30-second dead-writer deadline; the whole test deadline proves
	// the abort path repaired the hole immediately.
	small := pattern(2, pageSize)
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	v, err := b.Write(wctx, small, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, small) {
		t.Fatal("post-failure write round trip corrupted data")
	}
}
