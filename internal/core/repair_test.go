package core_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/provider"
	"blob/internal/wire"
)

// pageWrites returns every (write, pageCount) pair a store holds.
func storeWrites(st provider.PageStore) map[uint64]int {
	m := make(map[uint64]int)
	st.ForEachPage(func(_, write uint64, _ uint32, _ []byte) { m[write]++ })
	return m
}

// wipeStore deletes every page from a store, returning how many it held.
func wipeStore(st provider.PageStore, blobID uint64) int {
	n := 0
	for write := range storeWrites(st) {
		n += st.DeleteWrite(blobID, write)
	}
	return n
}

// TestReadRepairRestoresMissingReplica pins the read-repair side of
// docs/replication.md §6: a page served by a healthy replica after a
// definite miss is re-pushed to the replica that missed it, restoring
// redundancy as a side effect of reading.
func TestReadRepairRestoresMissingReplica(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 2, MetaProviders: 2, DataReplicas: 2})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)
	data := pattern(3, 8*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Lose every page of one replica store. Placement alternates replica
	// order, so some pages have the wiped store as their first probe —
	// those reads miss, fail over, and must re-push.
	lost := wipeStore(cl.DataStores[0], b.ID())
	if lost == 0 {
		t.Fatal("test bug: store 0 held no pages")
	}

	got := make([]byte, 8*pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatalf("read with wiped replica: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("failover returned wrong bytes")
	}

	// The background re-push restores at least the pages that missed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if cl.DataStores[0].Snapshot().PageCount > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no page re-pushed to the wiped replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if c.ReadRepairs.Value() == 0 {
		t.Error("ReadRepairs counter not incremented")
	}
}

// TestBloomRoutingSkipsRuledOutReplica pins digest routing: a cached
// digest that rules a page out must skip that replica without an RPC —
// the page is served by the other replica and the skipped provider is
// recorded as a repair target.
func TestBloomRoutingSkipsRuledOutReplica(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 2, MetaProviders: 2, DataReplicas: 2})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)
	data := pattern(5, 4*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	wipeStore(cl.DataStores[0], b.ID())

	// Provider IDs are assigned in registration order: store 0 serves
	// provider id 1. An empty digest (zero filters) rules everything out.
	c.SeedDigest(1, provider.Digest{})

	got := make([]byte, 4*pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatalf("read with ruled-out replica: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("routing returned wrong bytes")
	}
	if c.BloomSkips.Value() == 0 {
		t.Error("no probe was skipped despite a ruling-out digest")
	}
	// A digest skip is a definite miss: the skipped replica must become
	// a read-repair target and be repopulated in the background.
	deadline := time.Now().Add(5 * time.Second)
	for c.ReadRepairs.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("digest-skipped replica was never read-repaired")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBloomFalsePositiveFallsThrough pins the failure-matrix row the
// spec calls out: a replica whose digest says "might contain" but which
// actually lacks the page must be probed, miss, and fall through to the
// next replica — never error the read.
func TestBloomFalsePositiveFallsThrough(t *testing.T) {
	cl, c := launch(t, cluster.Config{DataProviders: 2, MetaProviders: 2, DataReplicas: 2})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)
	data := pattern(9, 4*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	wipeStore(cl.DataStores[0], b.ID())

	// Seed a digest claiming provider 1 might hold *everything* — the
	// false-positive extreme. Routing must not trust it as presence.
	all := wire.NewBloom(1)
	filled := &provider.Digest{Filters: []*wire.Bloom{all}}
	// Saturate the filter: one add sets 7 bits of a 64-bit word; add
	// enough keys that MightContain answers true for any key.
	for i := uint64(0); i < 200; i++ {
		all.Add(i, i*31, uint32(i))
	}
	c.SeedDigest(1, *filled)

	got := make([]byte, 4*pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatalf("read with false-positive digest: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("fall-through returned wrong bytes")
	}
	if c.BloomSkips.Value() != 0 {
		t.Error("false-positive digest caused a skip; replicas must be probed")
	}
}

// TestDigestNeverSkipsLastReplica pins the safety rule: even a digest
// ruling a page out on every replica leaves the last replica probed, so
// a wholly stale cache degrades performance, never correctness.
func TestDigestNeverSkipsLastReplica(t *testing.T) {
	_, c := launch(t, cluster.Config{DataProviders: 2, MetaProviders: 2, DataReplicas: 2})
	ctx := context.Background()
	b, _ := c.CreateBlob(ctx, pageSize, 64*pageSize)
	data := pattern(11, 2*pageSize)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Rule everything out everywhere: ids 1 and 2.
	c.SeedDigest(1, provider.Digest{})
	c.SeedDigest(2, provider.Digest{})

	got := make([]byte, 2*pageSize)
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatalf("read failed under all-ruling-out digests: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("wrong bytes")
	}
}
