package core

import (
	"context"
	"fmt"
	"time"

	"blob/internal/meta"
	"blob/internal/mstore"
	"blob/internal/provider"
	"blob/internal/rpc"
	"blob/internal/trace"
	"blob/internal/wire"
)

// ReadResult reports a completed read and its phase timings.
type ReadResult struct {
	// Latest is the newest published version at read time (the paper's
	// READ return value; Latest >= the requested version).
	Latest meta.Version
	// MetaTime covers the segment tree traversal.
	MetaTime time.Duration
	// DataTime covers page fetches.
	DataTime time.Duration
}

// Read implements the paper's READ primitive: fill buf with the segment
// at offset of version v. Version 0 reads the initial all-zero string.
// It fails with ErrNotPublished if v has not been published, and returns
// the latest published version otherwise.
func (b *Blob) Read(ctx context.Context, buf []byte, offset uint64, v meta.Version) (meta.Version, error) {
	res, err := b.ReadDetailed(ctx, buf, offset, v)
	return res.Latest, err
}

// ReadLatest reads the newest published snapshot and returns its
// version. The version learned from the version manager is passed down
// as already-validated, so the whole read costs a single centralized
// interaction (ReadDetailed would otherwise re-fetch it).
func (b *Blob) ReadLatest(ctx context.Context, buf []byte, offset uint64) (meta.Version, error) {
	latest, _, err := b.c.vm.Latest(ctx, b.id)
	if err != nil {
		return 0, err
	}
	_, err = b.readDetailed(ctx, buf, offset, latest, true)
	return latest, err
}

// ReadDetailed is Read with phase timings.
func (b *Blob) ReadDetailed(ctx context.Context, buf []byte, offset uint64, v meta.Version) (ReadResult, error) {
	return b.readDetailed(ctx, buf, offset, v, false)
}

// ReadPinned reads version v with no version-manager interaction at
// all. The caller asserts v is published — it pinned v earlier, from
// Latest, WaitVersion, a Write it performed, or another read's Latest
// return. This is the snapshot read of a pinned version in its purest
// form: a published version's metadata sub-forest and pages are
// immutable, so the read touches only the (decentralized) metadata ring
// and the data providers. A reader holding a pinned version can loop on
// ReadPinned forever without ever contacting the centralized version
// manager — concurrent writers publishing v+1, v+2, ... cannot slow it
// down there, which is the paper's lock-free claim and what
// bench.AblateIngest measures.
//
// Reading a never-published v through ReadPinned is a caller bug: the
// metadata traversal will fail (or, for an assigned-but-unpublished v,
// observe a tree still under construction).
func (b *Blob) ReadPinned(ctx context.Context, buf []byte, offset uint64, v meta.Version) error {
	_, err := b.readDetailed(ctx, buf, offset, v, true)
	return err
}

// readDetailed implements READ; vKnownPublished skips the freshness
// round trip when the caller just learned v from the version manager.
func (b *Blob) readDetailed(ctx context.Context, buf []byte, offset uint64, v meta.Version, vKnownPublished bool) (res ReadResult, err error) {
	start := time.Now()
	ctx, root := b.c.opts.Tracer.Root(ctx, "core.ReadBlob")
	if root != nil {
		root.AddBytes(int64(len(buf)))
		defer func() { b.c.endRoot(root, time.Since(start), err) }()
	}
	if len(buf) == 0 || uint64(len(buf))%b.pageSize != 0 {
		return res, fmt.Errorf("core: read length %d not a positive multiple of page size %d", len(buf), b.pageSize)
	}
	if offset%b.pageSize != 0 {
		return res, fmt.Errorf("core: read offset %d not page aligned", offset)
	}

	// Step 1 (paper §III.B): learn the latest published version — the
	// only centralized interaction of the whole read.
	res.Latest = v
	if !vKnownPublished {
		vctx, vop := trace.Start(ctx, "read.version")
		latest, _, err := b.c.vm.Latest(vctx, b.id)
		vop.EndErr(err)
		if err != nil {
			return res, err
		}
		if v > latest {
			return res, fmt.Errorf("%w: requested v%d, latest published v%d", ErrNotPublished, v, latest)
		}
		res.Latest = latest
	}

	// Step 2: resolve the segment through the metadata tree.
	t0 := time.Now()
	mctx, mop := trace.Start(ctx, "read.meta")
	pr := meta.PageRange{First: offset / b.pageSize, Count: uint64(len(buf)) / b.pageSize}
	leaves, err := b.c.ms.ReadPlan(mctx, b.id, v, b.totalPages, pr)
	mop.EndErr(err)
	if err != nil {
		return res, err
	}
	res.MetaTime = time.Since(t0)
	b.c.MetaReadTime.Observe(res.MetaTime)

	// Step 3: fetch all pages in parallel, batched per provider.
	t0 = time.Now()
	if err := b.fetchPages(ctx, buf, pr, leaves); err != nil {
		return res, err
	}
	res.DataTime = time.Since(t0)

	b.c.Reads.Inc()
	b.c.BytesRead.Add(int64(len(buf)))
	b.c.ReadLatency.ObserveExemplar(time.Since(start), root.TraceID())
	return res, nil
}

// ReadMeta performs only the metadata traversal for a segment — the
// operation Figure 3(a) measures.
func (b *Blob) ReadMeta(ctx context.Context, offset, length uint64, v meta.Version) ([]mstore.PageLeaf, error) {
	pr, err := meta.BytesToPages(offset, length, b.pageSize)
	if err != nil {
		return nil, err
	}
	return b.c.ms.ReadPlan(ctx, b.id, v, b.totalPages, pr)
}

// fetchPages downloads every non-zero leaf's page into buf, zero-filling
// zero pages, with replica failover, checksum verification, bloom-hinted
// and breaker-aware replica routing, hedged fetches and read-repair
// (docs/replication.md §6, docs/robustness.md): a replica whose cached
// digest definitely lacks a page — or whose circuit breaker is open —
// is skipped without an RPC, a definite miss refreshes that replica's
// digest, a group that outlives its provider's adaptive hedge delay is
// raced against the next replica tier (hedge.go), and a page a later
// replica serves is re-pushed in the background to every replica that
// definitively missed it, restoring redundancy as a side effect of
// reading.
func (b *Blob) fetchPages(ctx context.Context, buf []byte, pr meta.PageRange, leaves []mstore.PageLeaf) (err error) {
	ctx, fop := trace.Start(ctx, "read.fetch")
	if fop != nil {
		fop.AddBytes(int64(len(buf)))
		defer func() { fop.EndErr(err) }()
	}
	tc := trace.FromContext(ctx)
	dl, _ := ctx.Deadline()
	remaining := make([]fetchItem, 0, len(leaves))
	var striped []stripedItem
	for _, l := range leaves {
		dst := buf[(l.Page-pr.First)*b.pageSize : (l.Page-pr.First+1)*b.pageSize]
		if l.Leaf.Write == 0 {
			clear(dst)
			continue
		}
		if l.Leaf.Stripe != nil {
			// Erasure-coded page: single data provider, failover is
			// stripe reconstruction, not replica hopping (striped.go).
			striped = append(striped, stripedItem{leaf: l, dst: dst})
			continue
		}
		remaining = append(remaining, fetchItem{leaf: l, dst: dst})
	}
	if len(striped) > 0 {
		if err := b.fetchStriped(ctx, striped); err != nil {
			return err
		}
	}

	var repairs []readRepair
	legacy := b.c.opts.LegacyDataPath

	// Replica tiers: try everyone's first replica in one parallel wave,
	// then the second replica for whatever failed, and so on. A page
	// whose replica list is exhausted is unrecoverable.
	for tier := 0; len(remaining) > 0; tier++ {
		if tier > 0 {
			fop.Notef("retry: tier %d, %d pages", tier, len(remaining))
		}
		// Pre-count the fan-out so each group's slices allocate exactly
		// once (incremental append growth was a measurable slice of the
		// read path, docs/perf.md). The count ignores bloom and breaker
		// skips, so a skip merely leaves a little slack capacity.
		counts := make(map[uint32]int, 8)
		for _, it := range remaining {
			if provs := it.leaf.Leaf.Providers; tier < len(provs) {
				counts[provs[tier]]++
			}
		}
		groups := make(map[uint32]*fetchGroup, len(counts))
		var next []fetchItem
		for _, it := range remaining {
			provs := it.leaf.Leaf.Providers
			if tier >= len(provs) {
				return fmt.Errorf("%w: page %d (write %d) failed on all %d replicas",
					ErrPageUnavailable, it.leaf.Page, it.leaf.Leaf.Write, len(provs))
			}
			id := provs[tier]
			if tier < len(provs)-1 {
				// Breaker routing: a replica whose circuit breaker is
				// open is skipped like a bloom miss, without an RPC — but
				// never the last one, which is always worth a probe. An
				// open breaker is not a definite miss, so unlike a bloom
				// skip it marks no read-repair target.
				if addr, ok := b.c.cachedProviderAddr(id); ok && !b.c.pool.Available(addr) {
					fop.Notef("breaker-skip: provider %d", id)
					next = append(next, it)
					continue
				}
				// Bloom routing: skip a replica whose fresh digest rules
				// the page out — but never the last one, so a stale
				// digest can cost extra hops yet never fail a read by
				// itself.
				if d, ok := b.c.cachedDigest(id); ok &&
					!d.MightContain(b.id, it.leaf.Leaf.Write, it.leaf.Leaf.RelPage) {
					b.c.BloomSkips.Inc()
					fop.Notef("bloom-skip: provider %d", id)
					it.missed = append(it.missed, id)
					next = append(next, it)
					continue
				}
			}
			g := groups[id]
			if g == nil {
				n := counts[id]
				g = &fetchGroup{
					refs:  make([]provider.PageRef, 0, n),
					items: make([]fetchItem, 0, n),
					dsts:  make([][]byte, 0, n),
				}
				groups[id] = g
			}
			g.refs = append(g.refs, provider.PageRef{
				Blob: b.id, Write: it.leaf.Leaf.Write, RelPage: it.leaf.Leaf.RelPage,
			})
			g.items = append(g.items, it)
			g.dsts = append(g.dsts, it.dst)
		}

		pend := make([]*rpc.Pending, 0, len(groups))
		gs := make([]*fetchGroup, 0, len(groups))
		ids := make([]uint32, 0, len(groups))
		addrs := make([]string, 0, len(groups))
		for id, g := range groups {
			addr, err := b.c.providerAddr(ctx, id)
			if err != nil {
				// Unknown provider: try these pages on the next replica.
				next = append(next, g.items...)
				continue
			}
			pend = append(pend, b.c.pool.GoVecTD(addr, provider.MGetPages,
				[][]byte{provider.EncodeGetPages(g.refs)}, tc, dl))
			gs = append(gs, g)
			ids = append(ids, id)
			addrs = append(addrs, addr)
		}
		dispatched := time.Now()
		// missedWrites gathers, per definitively-missing provider, the
		// writes probed there — the digest refresh below scopes its
		// MListWrites to them. Allocated only when a miss happens.
		var missedWrites map[uint32][]uint64
		miss := func(it fetchItem, id uint32) fetchItem {
			it.missed = append(it.missed, id)
			if missedWrites == nil {
				missedWrites = make(map[uint32][]uint64)
			}
			missedWrites[id] = append(missedWrites[id], it.leaf.Leaf.Write)
			return it
		}
		// served records a verified page, queueing a read-repair when
		// earlier replicas definitively missed it. The repair references
		// the page bytes in place (it.dst or the decoded copy);
		// scheduleReadRepair materializes its own copy only for repairs
		// it actually schedules.
		served := func(it fetchItem, data []byte) {
			if len(it.missed) > 0 {
				repairs = append(repairs, readRepair{
					write:     it.leaf.Leaf.Write,
					rel:       it.leaf.Leaf.RelPage,
					data:      data,
					providers: it.missed,
				})
			}
		}
		// One status scratch serves every group: the wait loop decodes
		// sequentially.
		var status []provider.PageStatus
		if !legacy {
			maxGroup := 0
			for _, g := range gs {
				if len(g.refs) > maxGroup {
					maxGroup = len(g.refs)
				}
			}
			status = make([]provider.PageStatus, maxGroup)
		}
		for i, p := range pend {
			resp, err, hedged, abandoned := b.waitFetchHedged(ctx, p, gs[i], addrs[i], tier, tc, dispatched, fop)
			// serveHedged serves item j from verified hedge bytes when
			// the hedge produced them — the first-usable-response-wins
			// half of the race the primary lost (or failed).
			serveHedged := func(j int, it fetchItem) bool {
				if hedged == nil || hedged[j] == nil {
					return false
				}
				copy(it.dst, hedged[j])
				b.c.HedgeWins.Inc()
				served(it, it.dst)
				return true
			}
			if abandoned {
				// Every page of the group was hedge-served; the
				// straggling primary was never decoded.
				for j, it := range gs[i].items {
					serveHedged(j, it)
				}
				continue
			}
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				for j, it := range gs[i].items {
					if !serveHedged(j, it) {
						next = append(next, it)
					}
				}
				continue
			}
			if legacy {
				datas, err := provider.DecodeGetPages(resp, len(gs[i].refs))
				if err != nil {
					return err
				}
				for j, data := range datas {
					it := gs[i].items[j]
					switch {
					case data == nil:
						// Definite miss: the provider answered and lacks
						// the page — a read-repair target.
						if it = miss(it, ids[i]); !serveHedged(j, it) {
							next = append(next, it)
						}
					case uint64(len(data)) != b.pageSize ||
						wire.Checksum64(data) != it.leaf.Leaf.Checksum:
						// Corrupt copy: fail over, but don't re-push — the
						// provider holds a (bad) record and first-wins puts
						// would not replace it.
						if !serveHedged(j, it) {
							next = append(next, it)
						}
					default:
						copy(it.dst, data)
						served(it, data)
					}
				}
				continue
			}
			// Zero-copy path: pages land straight in their destination
			// slices; the pooled response frame goes back immediately.
			err = provider.DecodeGetPagesInto(resp, gs[i].dsts, status[:len(gs[i].refs)])
			p.Release()
			if err != nil {
				return err
			}
			for j, st := range status[:len(gs[i].refs)] {
				it := gs[i].items[j]
				switch {
				case st == provider.PageMissing:
					if it = miss(it, ids[i]); !serveHedged(j, it) {
						next = append(next, it)
					}
				case st == provider.PageBad ||
					wire.Checksum64(it.dst) != it.leaf.Leaf.Checksum:
					// Wrong size or corrupt: fail over; the next tier
					// overwrites whatever landed in dst.
					if !serveHedged(j, it) {
						next = append(next, it)
					}
				default:
					served(it, it.dst)
				}
			}
		}
		// Refresh the digests of providers that just missed, so the rest
		// of this failover (and the next digestTTL of reads) skips them
		// without paying their round trip again.
		b.c.refreshDigests(ctx, b.id, missedWrites)
		remaining = next
	}

	if len(repairs) > 0 {
		b.c.scheduleReadRepair(b.id, repairs)
	}
	return nil
}
