package core_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/erasure"
	"blob/internal/meta"
)

// TestErasureCounters pins the client-side erasure telemetry: writes
// account parity bytes, healthy reads never decode, and a degraded
// read counts one stripe decode plus the pages it served — then heals
// the missing shard back to its provider via the background re-push.
func TestErasureCounters(t *testing.T) {
	cl, c := launch(t, cluster.Config{
		DataProviders: 6,
		MetaProviders: 6,
		Redundancy:    erasure.Redundancy{K: 4, M: 2},
		CacheNodes:    0,
	})
	ctx := context.Background()
	b, err := c.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}

	data := pattern(3, 4*pageSize) // exactly one rs(4,2) stripe
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.ParityBytes.Value(); got != 2*pageSize {
		t.Fatalf("ParityBytes = %d, want %d (2 parity pages)", got, 2*pageSize)
	}

	got := make([]byte, len(data))
	if _, err := b.Read(ctx, got, 0, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("healthy read mismatch")
	}
	if c.DegradedReads.Value() != 0 || c.ReconstructedPages.Value() != 0 {
		t.Fatalf("healthy read decoded: %d/%d", c.DegradedReads.Value(), c.ReconstructedPages.Value())
	}

	// Drop page 0's shard from its home provider and read it back: one
	// stripe decode serving one page.
	write, home := leafPlacement(t, b, v)
	cl.DataStores[home-1].DeleteWrite(b.ID(), write)
	one := make([]byte, pageSize)
	if _, err := b.Read(ctx, one, 0, v); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, data[:pageSize]) {
		t.Fatal("degraded read mismatch")
	}
	if c.DegradedReads.Value() != 1 || c.ReconstructedPages.Value() != 1 {
		t.Fatalf("degraded counters = %d/%d, want 1/1",
			c.DegradedReads.Value(), c.ReconstructedPages.Value())
	}

	// The reconstructed page is re-pushed to its home provider in the
	// background, so redundancy returns without the repair agent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, ok := cl.DataStores[home-1].GetPage(b.ID(), write, 0); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reconstructed shard never re-pushed to its home provider")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// leafPlacement resolves page 0's write identity and home provider ID.
func leafPlacement(t *testing.T, b *core.Blob, v meta.Version) (uint64, uint32) {
	t.Helper()
	leaves, err := b.ReadMeta(context.Background(), 0, pageSize, v)
	if err != nil {
		t.Fatal(err)
	}
	if len(leaves) != 1 || leaves[0].Leaf.Stripe == nil {
		t.Fatalf("unexpected leaves: %+v", leaves)
	}
	return leaves[0].Leaf.Write, leaves[0].Leaf.Providers[0]
}

// TestPinnedReplicateOverridesAdvertisedRS pins the mode-precedence
// rule: a client that explicitly chose "replicate" (ParseRedundancy
// pins it) creates replicated blobs even on a cluster advertising
// rs(k,m); an unset option defers to the advertisement.
func TestPinnedReplicateOverridesAdvertisedRS(t *testing.T) {
	cl, _ := launch(t, cluster.Config{
		DataProviders: 6,
		MetaProviders: 6,
		Redundancy:    erasure.Redundancy{K: 4, M: 2},
	})
	ctx := context.Background()

	opts := cl.ClientOptions("pinned-client")
	var err error
	opts.Redundancy, err = erasure.ParseRedundancy("replicate")
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := core.NewClient(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	b, err := pinned.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if b.Redundancy().IsRS() {
		t.Fatalf("pinned replicate produced %v", b.Redundancy())
	}

	// Unset defers to the advertisement.
	def, err := cl.NewClient(ctx)
	if err != nil {
		t.Fatal(err)
	}
	defer def.Close()
	b2, err := def.CreateBlob(ctx, pageSize, 64*pageSize)
	if err != nil {
		t.Fatal(err)
	}
	if got := b2.Redundancy(); got != (erasure.Redundancy{K: 4, M: 2}) {
		t.Fatalf("default client created %v, want rs(4,2)", got)
	}
}
