package core

// Per-provider fetch latency estimation for hedged reads
// (docs/robustness.md): every successful page fetch feeds its
// provider's smoothed-latency estimator, and the read path asks the
// estimator how long a fetch to that provider may run before it is
// worth racing a second replica. The estimators are the classic
// Jacobson/Karels pair — srtt tracks the mean, rttvar the deviation —
// so srtt + 4*rttvar approximates a high percentile (~p95+) of that
// provider's recent latency: a hedge fires only for genuine
// stragglers, keeping the no-fault hedge rate (and hence the extra
// provider load) near zero.

import (
	"sync"
	"time"
)

const (
	// hedgeMinDelay floors the adaptive delay: on a fast local cluster
	// the estimators converge to microseconds, where scheduler jitter
	// alone would fire spurious hedges.
	hedgeMinDelay = 10 * time.Millisecond
	// hedgeMaxDelay caps the delay so one pathologically slow sample
	// era cannot disable hedging for a provider that later degrades.
	hedgeMaxDelay = time.Second
	// hedgeDefaultDelay is used until a provider has hedgeMinSamples
	// observations.
	hedgeDefaultDelay = 50 * time.Millisecond
	hedgeMinSamples   = 3
)

// latEstimate is one provider's smoothed latency state. Units are
// seconds (float: the EWMA updates divide).
type latEstimate struct {
	srtt   float64
	rttvar float64
	n      int
}

// latencies tracks per-provider fetch latency for the whole client.
// One short critical section per observation; fetch fan-outs read it
// once per group.
type latencies struct {
	mu sync.Mutex
	m  map[string]*latEstimate
}

func newLatencies() *latencies { return &latencies{m: make(map[string]*latEstimate)} }

// observe feeds one successful fetch's latency into addr's estimator
// (gains 1/8 and 1/4, the TCP RTO constants).
func (l *latencies) observe(addr string, d time.Duration) {
	sec := d.Seconds()
	l.mu.Lock()
	e := l.m[addr]
	if e == nil {
		e = &latEstimate{srtt: sec, rttvar: sec / 2}
		l.m[addr] = e
	} else {
		diff := sec - e.srtt
		if diff < 0 {
			diff = -diff
		}
		e.rttvar += (diff - e.rttvar) / 4
		e.srtt += (sec - e.srtt) / 8
	}
	e.n++
	l.mu.Unlock()
}

// hedgeDelay returns how long a fetch to addr may run before the read
// hedges it: ~p95 of addr's recent successful latency, clamped to
// [hedgeMinDelay, hedgeMaxDelay].
func (l *latencies) hedgeDelay(addr string) time.Duration {
	l.mu.Lock()
	e := l.m[addr]
	d := hedgeDefaultDelay
	if e != nil && e.n >= hedgeMinSamples {
		d = time.Duration((e.srtt + 4*e.rttvar) * float64(time.Second))
	}
	l.mu.Unlock()
	if d < hedgeMinDelay {
		d = hedgeMinDelay
	}
	if d > hedgeMaxDelay {
		d = hedgeMaxDelay
	}
	return d
}
