package throttle

import (
	"testing"
	"time"
)

// TestTokenBucket drives the bucket with a fake clock: a full bucket
// absorbs a burst, debt is repaid at the configured rate, and refill
// caps at the burst size.
func TestTokenBucket(t *testing.T) {
	now := time.Unix(0, 0)
	b := New(1000) // 1000 bytes/sec, 1000 burst
	b.SetClock(func() time.Time { return now })

	if d := b.Reserve(1000); d != 0 {
		t.Errorf("burst-covered reserve waits %v", d)
	}
	// Bucket empty: 500 more bytes cost 0.5s of debt.
	if d := b.Reserve(500); d != 500*time.Millisecond {
		t.Errorf("debt wait = %v, want 500ms", d)
	}
	// After 2s the debt is repaid and 1000 tokens (cap) are banked —
	// not 2000-500.
	now = now.Add(2 * time.Second)
	if d := b.Reserve(1500); d != 500*time.Millisecond {
		t.Errorf("capped refill wait = %v, want 500ms", d)
	}
}

// TestWaitStops pins that a stop channel cuts a debt sleep short.
func TestWaitStops(t *testing.T) {
	b := New(1) // 1 byte/sec: any charge creates a long debt
	b.SetBurst(0)
	stop := make(chan struct{})
	close(stop)
	start := time.Now()
	if b.Wait(1<<20, stop) {
		t.Error("Wait ignored a closed stop channel")
	}
	if time.Since(start) > time.Second {
		t.Error("Wait slept through the stop signal")
	}
}
