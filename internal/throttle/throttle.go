// Package throttle provides the token-bucket rate limiter that meters
// background I/O against foreground traffic. Two subsystems share it:
// the diskstore's segment compactor (Options.CompactRateBytes) and the
// data providers' repair page pulls (cluster.Config.RepairRateBytes) —
// both are bulk maintenance flows that must never starve client reads
// and writes, and both meter in bytes.
//
// The bucket uses a debt-repayment model: Reserve always succeeds
// immediately and may drive the balance negative (a single charge can
// exceed the burst), returning how long the caller must sleep before
// doing more I/O. That keeps accounting exact even when charges arrive
// after the I/O they cover — post-paying lets a caller sleep outside
// whatever lock the I/O was performed under.
package throttle

import (
	"sync"
	"time"
)

// TokenBucket meters I/O in tokens (bytes). Tokens refill continuously
// at Rate per second up to one second of burst. The zero value is not
// usable; construct with New.
type TokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens (bytes) per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time // test hook
}

// New creates a bucket refilling rate bytes/sec with one second of
// burst, starting full.
func New(rate int64) *TokenBucket {
	b := &TokenBucket{rate: float64(rate), burst: float64(rate), now: time.Now}
	b.tokens = b.burst
	b.last = b.now()
	return b
}

// SetClock replaces the bucket's time source (tests only).
func (b *TokenBucket) SetClock(now func() time.Time) {
	b.mu.Lock()
	b.now = now
	b.last = now()
	b.mu.Unlock()
}

// SetBurst overrides the burst capacity (default: one second of rate),
// clamping the current balance to it. A tiny burst makes every charge
// create debt — tests use it to force deterministic throttling.
func (b *TokenBucket) SetBurst(n int64) {
	b.mu.Lock()
	b.burst = float64(n)
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Reserve consumes n tokens and returns how long the caller must wait
// for the balance to return to zero (0 when the bucket covers n).
func (b *TokenBucket) Reserve(n int64) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// Wait charges n tokens and sleeps off any debt, returning early with
// false if stop closes during the wait (so a throttled background task
// never delays shutdown). A nil stop channel just sleeps.
func (b *TokenBucket) Wait(n int64, stop <-chan struct{}) bool {
	d := b.Reserve(n)
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-stop:
		return false
	case <-t.C:
		return true
	}
}
