package bench

import (
	"testing"
	"time"
)

// smokeScale shrinks everything so the harness itself is verified in
// milliseconds; the real figures use DefaultScale.
func smokeScale() Scale {
	return Scale{
		PageSize:     4 << 10,
		BlobPages:    1 << 16,
		MetaPutDelay: 5 * time.Microsecond,
		Iterations:   2,
	}
}

func TestFig3aPointRuns(t *testing.T) {
	pt, err := Fig3aMetadataRead(3, 8, smokeScale())
	if err != nil {
		t.Fatal(err)
	}
	if pt.MeanTime <= 0 {
		t.Errorf("mean time = %v", pt.MeanTime)
	}
	if pt.SegmentKB != 32 {
		t.Errorf("segment = %dKB, want 32", pt.SegmentKB)
	}
}

func TestFig3bPointRuns(t *testing.T) {
	pt, err := Fig3bMetadataWrite(3, 8, smokeScale())
	if err != nil {
		t.Fatal(err)
	}
	if pt.MeanTime <= 0 {
		t.Errorf("mean time = %v", pt.MeanTime)
	}
}

func TestFig3cPointRuns(t *testing.T) {
	fs := Fig3cScale{StorageNodes: 4, PageSize: 4 << 10, RegionPages: 256, SegPages: 4, Iterations: 3}
	for _, mode := range []Mode{ModeRead, ModeWrite, ModeReadCached} {
		pt, err := Fig3cThroughput(2, mode, fs, smokeScale())
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if pt.PerClientMBps <= 0 {
			t.Errorf("%v: per-client bandwidth = %v", mode, pt.PerClientMBps)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeRead.String() != "Read" || ModeWrite.String() != "Write" {
		t.Error("mode names wrong")
	}
	if ModeReadCached.String() != "Read (cached metadata)" {
		t.Error("cached mode name wrong")
	}
}

func TestAblationsRun(t *testing.T) {
	sc := smokeScale()
	if pts, err := AblateCache(2, 8, sc); err != nil || len(pts) != 2 {
		t.Fatalf("cache ablation: %v %v", pts, err)
	}
	if pts, err := AblatePlacement(4, 6, 4, sc); err != nil || len(pts) != 3 {
		t.Fatalf("placement ablation: %v %v", pts, err)
	}
	if pts, err := AblateReplication(3, 4, []int{1, 2}, sc); err != nil || len(pts) != 2 {
		t.Fatalf("replication ablation: %v %v", pts, err)
	}
	if pts, err := AblatePageSize(2, 64<<10, []uint64{16 << 10, 32 << 10}, 1); err != nil || len(pts) != 2 {
		t.Fatalf("page size ablation: %v %v", pts, err)
	}
	if pts, err := AblateBatching(2, 8, sc); err != nil || len(pts) != 2 {
		t.Fatalf("batching ablation: %v %v", pts, err)
	}
	pts, err := AblatePersistence(2, 2, 4, sc)
	if err != nil || len(pts) != 6 {
		t.Fatalf("persistence ablation: %v %v", pts, err)
	}
	for _, p := range pts {
		if p.Value <= 0 {
			t.Errorf("persistence point %q = %v %s", p.Name, p.Value, p.Unit)
		}
	}
}

func TestAblateRestartRuns(t *testing.T) {
	pts, err := AblateRestart(4, 64<<10)
	if err != nil || len(pts) != 5 {
		t.Fatalf("restart ablation: %v %v", pts, err)
	}
	byName := map[string]float64{}
	for _, p := range pts {
		byName[p.Name] = p.Value
	}
	// The whole point: a sidecar restart reads far less segment data than
	// a full replay (only the active tail, if anything).
	side := byName["segment bytes read, sidecar index"]
	full := byName["segment bytes read, full replay"]
	if full <= 0 || side >= full/2 {
		t.Errorf("sidecar restart read %v MB of segment data vs %v MB full replay", side, full)
	}
}

func TestSegmentOffsetsDisjointAcrossClients(t *testing.T) {
	fs := DefaultFig3cScale()
	seen := map[uint64]bool{}
	for i := 0; i < 20; i++ {
		off := segmentOffset(i, 0, 20, fs)
		if seen[off] {
			t.Fatalf("clients collide at offset %d", off)
		}
		seen[off] = true
		if off%(fs.SegPages*fs.PageSize) != 0 {
			t.Errorf("offset %d not segment aligned", off)
		}
	}
}

func TestAblateRepairRuns(t *testing.T) {
	pts, err := AblateRepair(3, 3, 4, smokeScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %v", pts)
	}
	if pts[0].Value <= 0 {
		t.Errorf("time to full redundancy = %v", pts[0].Value)
	}
	if pts[2].Value != 100 {
		t.Errorf("healthy verify pass bloom-skip rate = %v%%, want 100", pts[2].Value)
	}
}

// TestAblateErasureRuns verifies the erasure-vs-replication ablation
// harness end to end at smoke scale, including its two acceptance
// assertions: rs(4,2) stores less and its repair pushes fewer bytes
// into the degraded provider than 2x replication.
func TestAblateErasureRuns(t *testing.T) {
	pts, err := AblateErasure(4, 8, smokeScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]float64{}
	for _, p := range pts {
		byName[p.Name] = p.Value
	}
	if o := byName["rs(4,2): storage overhead"]; o >= byName["2x replication: storage overhead"] {
		t.Errorf("rs overhead %v not below replication %v", o, byName["2x replication: storage overhead"])
	}
	if r := byName["rs(4,2): repair bytes into degraded provider"]; r >= byName["2x replication: repair bytes into degraded provider"] {
		t.Errorf("rs repair ingest %v MB not below replication %v MB",
			r, byName["2x replication: repair bytes into degraded provider"])
	}
}

func TestAblateHotPathRuns(t *testing.T) {
	rep, err := AblateHotPath(3, 8, smokeScale())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RoundTripsVerified {
		t.Error("hot-path round trips not verified byte-identical")
	}
	if rep.Legacy.WriteAllocsPerOp <= 0 || rep.Vectored.WriteAllocsPerOp <= 0 {
		t.Errorf("degenerate alloc measurements: %+v", rep)
	}
	if rep.Monitored.ReadP99Ms <= 0 {
		t.Errorf("monitored mode did not run: %+v", rep.Monitored)
	}
	if len(rep.Points()) == 0 {
		t.Error("no ablation points")
	}
}

func TestAblateIngestRuns(t *testing.T) {
	rep, err := AblateIngest(2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.SnapshotStable {
		t.Error("pinned snapshots not byte-stable")
	}
	if rep.Quiescent.Reads != 24 || rep.Ingesting.Reads != 24 {
		t.Errorf("read counts: %+v / %+v", rep.Quiescent, rep.Ingesting)
	}
	if rep.Ingesting.EpochsPublished <= 0 {
		t.Error("ingestion phase published no epochs")
	}
	if rep.P99RatioPct <= 0 {
		t.Errorf("p99 ratio = %v", rep.P99RatioPct)
	}
}

func TestAblateSwarmRuns(t *testing.T) {
	rep, err := AblateSwarm(3, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Verified {
		t.Error("swarm reads not verified against the catalog")
	}
	if rep.TotalReads != 60 || rep.ReadsPerSec <= 0 {
		t.Errorf("total=%d rate=%v", rep.TotalReads, rep.ReadsPerSec)
	}
	if rep.AllocsPerRead <= 0 || rep.KBPerRead <= 0 {
		t.Errorf("degenerate alloc budget: %+v", rep)
	}
}

func TestAblateTimeTravelRuns(t *testing.T) {
	rep, err := AblateTimeTravel(5, []int{1, 4}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.GroundTruthVerified {
		t.Error("diffs not verified against injected transients")
	}
	if len(rep.Points) != 2 {
		t.Fatalf("points: %+v", rep.Points)
	}
	for _, p := range rep.Points {
		if p.DiffMeanMs <= 0 || p.MBPerS <= 0 {
			t.Errorf("distance %d: degenerate measurement %+v", p.Distance, p)
		}
		if p.Candidates < 1 {
			t.Errorf("distance %d: the injected supernova produced no candidates", p.Distance)
		}
	}
}

// TestAblateChaosRuns verifies the gray-failure matrix harness end to
// end at smoke scale. Latency ratios are not asserted here — CI
// machines are too noisy for that; the committed BENCH_10.json carries
// the gate numbers — but the structural claims must hold: every cell's
// reads verify byte-identical under fault, the stalled cell hedges,
// and hedging costs no extra requests when nothing is wrong.
func TestAblateChaosRuns(t *testing.T) {
	rep, err := AblateChaos(15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Scenarios) != 5 {
		t.Fatalf("scenarios: %+v", rep.Scenarios)
	}
	var healthyOff, healthyOn, stalled *ChaosScenario
	for i := range rep.Scenarios {
		s := &rep.Scenarios[i]
		if !s.Verified {
			t.Errorf("%q: reads not verified byte-identical", s.Name)
		}
		if s.ReadP99Ms <= 0 || s.ProviderGets <= 0 {
			t.Errorf("%q: degenerate measurement %+v", s.Name, s)
		}
		switch {
		case s.Fault == "none" && !s.Hedging:
			healthyOff = s
		case s.Fault == "none" && s.Hedging:
			healthyOn = s
		case s.Fault == "stall":
			stalled = s
		}
	}
	if stalled == nil || stalled.HedgedReads == 0 || stalled.HedgeWins == 0 {
		t.Errorf("stalled cell never hedged: %+v", stalled)
	}
	if healthyOff.HedgedReads != 0 {
		t.Errorf("hedging-off cell recorded hedges: %+v", healthyOff)
	}
	// The no-fault overhead gate, with slack for a hedge or two fired
	// by scheduler noise.
	if healthyOn.ProviderGets > healthyOff.ProviderGets*110/100 {
		t.Errorf("no-fault hedge overhead: %d gets hedged vs %d unhedged",
			healthyOn.ProviderGets, healthyOff.ProviderGets)
	}
}

func TestAblateVmanagerShardsRuns(t *testing.T) {
	rep, err := AblateVmanagerShards([]int{1, 2}, 2, 2, 4, 50*time.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(rep.Points))
	}
	for _, p := range rep.Points {
		if p.PublishesPerSec <= 0 || p.Publishes != 8 {
			t.Errorf("shards %d: %+v", p.Shards, p)
		}
		total := 0
		for _, n := range p.BlobsPerShard {
			total += n
		}
		if total != 2 {
			t.Errorf("shards %d: blob spread %v does not cover 2 writers", p.Shards, p.BlobsPerShard)
		}
	}
	if rep.Points[0].SpeedupVsOne != 1 {
		t.Errorf("baseline speedup = %v, want 1", rep.Points[0].SpeedupVsOne)
	}
}
