package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"blob/internal/cluster"
	"blob/internal/netsim"
)

// AblatePersistence compares write and read throughput of RAM-only
// providers (the paper's design) against disk-backed providers and
// disk-backed providers fronted by a write-through RAM cache — the cost
// of durability, and how much of it the cache tier buys back. Each
// backend runs the same single-client streaming workload: `writes`
// segments of segPages pages written back to back, then read back.
func AblatePersistence(providers, writes int, segPages uint64, sc Scale) ([]AblationPoint, error) {
	type backend struct {
		name string
		cfg  func(dir string) cluster.Config
	}
	base := func() cluster.Config {
		return cluster.Config{
			DataProviders:    providers,
			MetaProviders:    providers,
			Net:              netsim.Grid5000(),
			CoLocate:         true,
			CacheNodes:       -1,
			MetaPutDelay:     sc.MetaPutDelay,
			MetaProcessDelay: sc.MetaProcessDelay,
		}
	}
	backends := []backend{
		{"RAM providers (paper)", func(string) cluster.Config { return base() }},
		{"disk providers", func(dir string) cluster.Config {
			c := base()
			c.DataDir = dir
			return c
		}},
		{"disk + RAM cache", func(dir string) cluster.Config {
			c := base()
			c.DataDir = dir
			c.DiskCacheBytes = 1 << 30
			return c
		}},
	}

	var out []AblationPoint
	for _, bk := range backends {
		dir, err := os.MkdirTemp("", "blob-bench-disk-")
		if err != nil {
			return nil, err
		}
		wMBs, rMBs, err := persistencePoint(bk.cfg(dir), writes, segPages, sc)
		os.RemoveAll(dir)
		if err != nil {
			return nil, err
		}
		out = append(out,
			AblationPoint{Name: fmt.Sprintf("write, %s", bk.name), Value: wMBs, Unit: "MB/s"},
			AblationPoint{Name: fmt.Sprintf("read, %s", bk.name), Value: rMBs, Unit: "MB/s"},
		)
	}
	return out, nil
}

// persistencePoint runs the streaming workload on one deployment and
// returns (write MB/s, read MB/s).
func persistencePoint(cfg cluster.Config, writes int, segPages uint64, sc Scale) (float64, float64, error) {
	cl, err := cluster.Launch(cfg)
	if err != nil {
		return 0, 0, err
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return 0, 0, err
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
	if err != nil {
		return 0, 0, err
	}
	seg := make([]byte, segPages*sc.PageSize)
	segBytes := float64(len(seg))

	t0 := time.Now()
	for i := 0; i < writes; i++ {
		if _, err := b.Write(ctx, seg, uint64(i)*uint64(len(seg))); err != nil {
			return 0, 0, err
		}
	}
	wSec := time.Since(t0).Seconds()

	v, _, err := b.Latest(ctx)
	if err != nil {
		return 0, 0, err
	}
	buf := make([]byte, len(seg))
	t0 = time.Now()
	for i := 0; i < writes; i++ {
		if _, err := b.Read(ctx, buf, uint64(i)*uint64(len(seg)), v); err != nil {
			return 0, 0, err
		}
	}
	rSec := time.Since(t0).Seconds()

	mb := segBytes * float64(writes) / (1 << 20)
	return mb / wSec, mb / rSec, nil
}
