package bench

// Hot-path ablation (docs/perf.md): the zero-copy vectored data path +
// pipelined write protocol versus the legacy codec, on the same
// simulated Grid'5000 fabric. This is the measurement behind the perf
// trajectory seeded by BENCH_5.json: write/read latency (mean and p99),
// process-wide allocations and allocated bytes per operation, with
// every read verified byte-identical against what was written.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/monitor"
	"blob/internal/rpc"
	"blob/internal/trace"
)

// HotPathStats is one mode's measurement.
type HotPathStats struct {
	Mode             string  `json:"mode"`
	WriteMeanMs      float64 `json:"write_mean_ms"`
	WriteP99Ms       float64 `json:"write_p99_ms"`
	ReadMeanMs       float64 `json:"read_mean_ms"`
	ReadP99Ms        float64 `json:"read_p99_ms"`
	WriteAllocsPerOp float64 `json:"write_allocs_per_op"`
	WriteKBPerOp     float64 `json:"write_kb_per_op"`
	ReadAllocsPerOp  float64 `json:"read_allocs_per_op"`
	ReadKBPerOp      float64 `json:"read_kb_per_op"`
}

// HotPathReport is the full before/after comparison, serialized to
// BENCH_5.json by cmd/blobbench.
type HotPathReport struct {
	SegPages  uint64 `json:"seg_pages"`
	PageSize  uint64 `json:"page_size"`
	Providers int    `json:"providers"`
	Writes    int    `json:"writes"`

	Legacy   HotPathStats `json:"legacy"`
	Vectored HotPathStats `json:"vectored"`
	// Traced is the vectored path with a 1-in-64 sampling span tracer
	// attached (docs/observability.md) — the recommended production
	// sampling rate, measured so the tracing tax stays visible.
	Traced HotPathStats `json:"traced"`
	// Monitored is the vectored path while a cluster monitor polls the
	// deployment's MStats/MLatency/MEvents/MVmStatus every 50ms — far
	// more aggressive than the production 1s default, so the measured
	// tax is an upper bound on what the health plane costs.
	Monitored HotPathStats `json:"monitored"`

	// Reductions are (legacy - vectored) / legacy, in percent.
	WriteAllocReductionPct float64 `json:"write_alloc_reduction_pct"`
	WriteBytesReductionPct float64 `json:"write_bytes_reduction_pct"`
	ReadAllocReductionPct  float64 `json:"read_alloc_reduction_pct"`
	ReadBytesReductionPct  float64 `json:"read_bytes_reduction_pct"`
	WriteMeanSpeedupPct    float64 `json:"write_mean_speedup_pct"`
	ReadMeanSpeedupPct     float64 `json:"read_mean_speedup_pct"`

	// TraceOverheadPct is (traced - vectored) / vectored write mean, in
	// percent: what 1-in-64 span sampling costs on the write hot path.
	TraceOverheadPct float64 `json:"trace_overhead_pct"`
	// MonitorOverheadPct is (monitored - vectored) / vectored read p99,
	// in percent: what the polling monitor costs the read tail. The
	// acceptance bar is <2%; negative values are run-to-run noise.
	MonitorOverheadPct float64 `json:"monitor_overhead_pct"`

	// RoundTripsVerified is true when every read in both modes returned
	// exactly the bytes its write stored.
	RoundTripsVerified bool `json:"round_trips_verified"`
}

// Points flattens the report for the text-table printers.
func (r HotPathReport) Points() []AblationPoint {
	pts := make([]AblationPoint, 0, 40)
	for _, st := range []HotPathStats{r.Legacy, r.Vectored, r.Traced, r.Monitored} {
		pts = append(pts,
			AblationPoint{Name: st.Mode + " write mean", Value: st.WriteMeanMs, Unit: "ms"},
			AblationPoint{Name: st.Mode + " write p99", Value: st.WriteP99Ms, Unit: "ms"},
			AblationPoint{Name: st.Mode + " read mean", Value: st.ReadMeanMs, Unit: "ms"},
			AblationPoint{Name: st.Mode + " read p99", Value: st.ReadP99Ms, Unit: "ms"},
			AblationPoint{Name: st.Mode + " write allocs/op", Value: st.WriteAllocsPerOp, Unit: "allocs"},
			AblationPoint{Name: st.Mode + " write KB/op", Value: st.WriteKBPerOp, Unit: "KB"},
			AblationPoint{Name: st.Mode + " read allocs/op", Value: st.ReadAllocsPerOp, Unit: "allocs"},
			AblationPoint{Name: st.Mode + " read KB/op", Value: st.ReadKBPerOp, Unit: "KB"},
		)
	}
	pts = append(pts,
		AblationPoint{Name: "write alloc reduction", Value: r.WriteAllocReductionPct, Unit: "%"},
		AblationPoint{Name: "write bytes reduction", Value: r.WriteBytesReductionPct, Unit: "%"},
		AblationPoint{Name: "read alloc reduction", Value: r.ReadAllocReductionPct, Unit: "%"},
		AblationPoint{Name: "read bytes reduction", Value: r.ReadBytesReductionPct, Unit: "%"},
		AblationPoint{Name: "write mean speedup", Value: r.WriteMeanSpeedupPct, Unit: "%"},
		AblationPoint{Name: "read mean speedup", Value: r.ReadMeanSpeedupPct, Unit: "%"},
		AblationPoint{Name: "trace overhead, write mean", Value: r.TraceOverheadPct, Unit: "%"},
		AblationPoint{Name: "monitor overhead, read p99", Value: r.MonitorOverheadPct, Unit: "%"},
	)
	return pts
}

// AblateHotPath measures the data hot path end to end in both codec
// modes. writes is the operation count per mode; each operation moves a
// segment of segPages pages. The metadata backend/processing delay
// models are disabled so the measurement isolates the data path the
// ablation is about; the fabric is the paper's Grid'5000 simulation, so
// latency numbers carry netsim.TimeScale like every other experiment.
func AblateHotPath(writes int, segPages uint64, sc Scale) (HotPathReport, error) {
	rep := HotPathReport{SegPages: segPages, PageSize: sc.PageSize, Providers: 4, Writes: writes}
	scHot := sc
	scHot.MetaPutDelay = 0
	scHot.MetaProcessDelay = 0
	rep.RoundTripsVerified = true

	// Both modes run against one cluster instance (disjoint blobs), so
	// the comparison never carries fabric-instantiation variance.
	cl, err := grid5000Cluster(rep.Providers, scHot, -1)
	if err != nil {
		return rep, err
	}
	defer cl.Shutdown()

	for _, mode := range []string{"legacy", "vectored", "traced", "monitored"} {
		var mon *monitor.Monitor
		var mpool *rpc.Pool
		if mode == "monitored" {
			// The monitor polls the same deployment the ops run against,
			// from its own simulated host, at 20x the production rate.
			mpool = rpc.NewPool(cl.ClientOptions("bench-monitor").Network)
			mon = monitor.New(monitor.Config{
				Pool:     mpool,
				PMAddr:   cl.PMAddr,
				VMShards: cl.VMShardAddrs,
				Interval: 50 * time.Millisecond,
			})
			mon.Start()
		}
		st, ok, err := hotPathMode(cl, mode, writes, segPages, scHot)
		if mon != nil {
			mon.Close()
			mpool.Close()
		}
		if err != nil {
			return rep, err
		}
		if !ok {
			rep.RoundTripsVerified = false
		}
		switch mode {
		case "legacy":
			rep.Legacy = st
		case "vectored":
			rep.Vectored = st
		case "traced":
			rep.Traced = st
		case "monitored":
			rep.Monitored = st
		}
	}

	pct := func(legacy, vec float64) float64 {
		if legacy <= 0 {
			return 0
		}
		return (legacy - vec) / legacy * 100
	}
	rep.WriteAllocReductionPct = pct(rep.Legacy.WriteAllocsPerOp, rep.Vectored.WriteAllocsPerOp)
	rep.WriteBytesReductionPct = pct(rep.Legacy.WriteKBPerOp, rep.Vectored.WriteKBPerOp)
	rep.ReadAllocReductionPct = pct(rep.Legacy.ReadAllocsPerOp, rep.Vectored.ReadAllocsPerOp)
	rep.ReadBytesReductionPct = pct(rep.Legacy.ReadKBPerOp, rep.Vectored.ReadKBPerOp)
	rep.WriteMeanSpeedupPct = pct(rep.Legacy.WriteMeanMs, rep.Vectored.WriteMeanMs)
	rep.ReadMeanSpeedupPct = pct(rep.Legacy.ReadMeanMs, rep.Vectored.ReadMeanMs)
	// Sign flipped versus the reductions: positive means tracing made
	// writes slower.
	rep.TraceOverheadPct = -pct(rep.Vectored.WriteMeanMs, rep.Traced.WriteMeanMs)
	rep.MonitorOverheadPct = -pct(rep.Vectored.ReadP99Ms, rep.Monitored.ReadP99Ms)
	return rep, nil
}

// hotPathMode runs one mode's write+read sweep and returns its stats
// and whether all round trips were byte-identical. Modes: "legacy"
// (pre-vectored codec), "vectored" (the production path, tracing off),
// "traced" (vectored + 1-in-64 span sampling), "monitored" (vectored
// while the caller keeps a cluster monitor polling).
func hotPathMode(cl *cluster.Cluster, mode string, writes int, segPages uint64, sc Scale) (HotPathStats, bool, error) {
	st := HotPathStats{Mode: mode}
	ctx := context.Background()
	opts := cl.ClientOptions("hotpath-" + st.Mode)
	opts.LegacyDataPath = mode == "legacy"
	if mode == "traced" {
		opts.Tracer = trace.New("hotpath-traced", trace.DefaultRing, 64)
	}
	c, err := core.NewClient(ctx, opts)
	if err != nil {
		return st, false, err
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
	if err != nil {
		return st, false, err
	}

	segBytes := segPages * sc.PageSize
	rng := rand.New(rand.NewSource(42))
	segments := make([][]byte, writes)
	for i := range segments {
		segments[i] = make([]byte, segBytes)
		rng.Read(segments[i])
	}
	offset := func(i int) uint64 { return uint64(i) * 2 * segBytes }

	// Warm-up op (connections, pools, provider directory) outside the
	// measured window.
	warm := make([]byte, segBytes)
	if _, err := b.Write(ctx, warm, uint64(writes)*2*segBytes); err != nil {
		return st, false, err
	}

	var ms runtime.MemStats
	lat := make([]time.Duration, writes)

	runtime.GC()
	runtime.ReadMemStats(&ms)
	m0, b0 := ms.Mallocs, ms.TotalAlloc
	for i := 0; i < writes; i++ {
		t0 := time.Now()
		if _, err := b.Write(ctx, segments[i], offset(i)); err != nil {
			return st, false, err
		}
		lat[i] = time.Since(t0)
	}
	runtime.ReadMemStats(&ms)
	st.WriteAllocsPerOp = float64(ms.Mallocs-m0) / float64(writes)
	st.WriteKBPerOp = float64(ms.TotalAlloc-b0) / float64(writes) / 1024
	st.WriteMeanMs, st.WriteP99Ms = latStats(lat)

	verified := true
	got := make([]byte, segBytes)
	runtime.GC()
	runtime.ReadMemStats(&ms)
	m0, b0 = ms.Mallocs, ms.TotalAlloc
	for i := 0; i < writes; i++ {
		t0 := time.Now()
		if _, err := b.ReadLatest(ctx, got, offset(i)); err != nil {
			return st, false, err
		}
		lat[i] = time.Since(t0)
		if !bytes.Equal(got, segments[i]) {
			verified = false
		}
	}
	runtime.ReadMemStats(&ms)
	st.ReadAllocsPerOp = float64(ms.Mallocs-m0) / float64(writes)
	st.ReadKBPerOp = float64(ms.TotalAlloc-b0) / float64(writes) / 1024
	st.ReadMeanMs, st.ReadP99Ms = latStats(lat)
	if !verified {
		return st, false, fmt.Errorf("bench: %s mode served bytes differing from what was written", st.Mode)
	}
	return st, true, nil
}

// latStats returns mean and p99 in milliseconds.
func latStats(lat []time.Duration) (mean, p99 float64) {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	mean = total.Seconds() / float64(len(sorted)) * 1e3
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	p99 = sorted[idx].Seconds() * 1e3
	return mean, p99
}
