package bench

import (
	"context"
	"fmt"
	"os"
	"time"

	"blob/internal/cluster"
	"blob/internal/erasure"
	"blob/internal/netsim"
	"blob/internal/repair"
)

// AblateErasure compares the two redundancy modes of docs/erasure.md on
// the same fault: a 6-provider persistent deployment stores the same
// logical data under 2x replication and under rs(4,2), loses one
// provider's entire data directory, and heals. Reported per mode:
//
//   - storage overhead: stored bytes / logical bytes (2.0 vs 1.5);
//   - repair ingest: bytes pushed into the degraded provider to restore
//     it (a replica share vs the smaller parity-amortized shard share) —
//     the acceptance metric;
//   - total repair traffic: ingest plus, for rs, the survivor shards the
//     agent read to decode (reconstruction trades extra reads for the
//     storage savings);
//   - time to full redundancy.
//
// Both runs end with a clean verify pass, and the rs run asserts that
// reconstruction (not replica pulls) did the healing.
func AblateErasure(writes int, segPages uint64, sc Scale) ([]AblationPoint, error) {
	logical := int64(writes) * int64(segPages) * int64(sc.PageSize)
	var out []AblationPoint
	for _, mode := range []struct {
		name string
		cfg  cluster.Config
	}{
		{"2x replication", cluster.Config{DataReplicas: 2}},
		{"rs(4,2)", cluster.Config{Redundancy: erasure.Redundancy{K: 4, M: 2}}},
	} {
		dir, err := os.MkdirTemp("", "blob-bench-erasure-")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		cfg := mode.cfg
		cfg.DataProviders = 6
		cfg.MetaProviders = 6
		cfg.CoLocate = true
		cfg.DataDir = dir
		cfg.Net = netsim.Grid5000()
		cl, err := cluster.Launch(cfg)
		if err != nil {
			return nil, err
		}
		pts, err := erasureRun(cl, mode.name, writes, segPages, sc, logical)
		cl.Shutdown()
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", mode.name, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

func erasureRun(cl *cluster.Cluster, name string, writes int, segPages uint64, sc Scale, logical int64) ([]AblationPoint, error) {
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
	if err != nil {
		return nil, err
	}
	seg := make([]byte, segPages*sc.PageSize)
	for i := range seg {
		seg[i] = byte(i * 31)
	}
	for i := 0; i < writes; i++ {
		if _, err := b.Write(ctx, seg, uint64(i)*segPages*sc.PageSize); err != nil {
			return nil, err
		}
	}
	var stored int64
	for _, st := range cl.DataStores {
		stored += st.Snapshot().BytesUsed
	}
	fullPages := cl.TotalDataPages()

	if err := cl.WipeDataProvider(0); err != nil {
		return nil, err
	}
	agent := repair.New(c)
	t0 := time.Now()
	rep, err := agent.RepairBlob(ctx, b.ID())
	healTime := time.Since(t0)
	if err != nil {
		return nil, err
	}
	if !rep.FullyRedundant() {
		return nil, fmt.Errorf("repair left slots degraded: %+v", rep)
	}
	if got := cl.TotalDataPages(); got != fullPages {
		return nil, fmt.Errorf("%d/%d pages after repair", got, fullPages)
	}
	verify, err := agent.RepairBlob(ctx, b.ID())
	if err != nil {
		return nil, err
	}
	if verify.PagesMissing != 0 {
		return nil, fmt.Errorf("verify pass found %d missing", verify.PagesMissing)
	}
	ingest := rep.BytesPulled + rep.ReconstructedBytes
	total := ingest + rep.SurvivorBytes
	if b.Redundancy().IsRS() {
		if rep.PagesReconstructed == 0 || rep.PagesRepaired != 0 {
			return nil, fmt.Errorf("rs healing used replica pulls: %+v", rep)
		}
	}
	// Prove the healed deployment still reads.
	buf := make([]byte, len(seg))
	if _, err := b.ReadLatest(ctx, buf, 0); err != nil {
		return nil, fmt.Errorf("read after heal: %w", err)
	}

	return []AblationPoint{
		{Name: name + ": storage overhead", Value: float64(stored) / float64(logical), Unit: "x"},
		{Name: name + ": repair bytes into degraded provider", Value: float64(ingest) / (1 << 20), Unit: "MB"},
		{Name: name + ": total repair traffic", Value: float64(total) / (1 << 20), Unit: "MB"},
		{Name: name + ": time to full redundancy", Value: healTime.Seconds() * 1e3, Unit: "ms"},
	}, nil
}
