package bench

// Time-travel analytics workload (docs/workloads.md): diff two survey
// epochs — arbitrarily far apart in version history — to find
// transients, using sky.Survey.DiffEpochs over explicit-version pinned
// reads. The sweep measures diff throughput as a function of version
// distance: a store whose historical versions stay first-class should
// show flat cost, since every version's metadata tree is equally
// reachable (no delta-chain replay).

import (
	"context"
	"fmt"
	"time"

	"blob/internal/sky"
)

// TimeTravelPoint is one version-distance measurement.
type TimeTravelPoint struct {
	Distance   int     `json:"distance"` // epochs between the two versions
	EpochA     int     `json:"epoch_a"`
	EpochB     int     `json:"epoch_b"`
	DiffMeanMs float64 `json:"diff_mean_ms"`
	TilesPerS  float64 `json:"tiles_per_s"`
	MBPerS     float64 `json:"mb_per_s"`
	Candidates int     `json:"candidates"`
}

// TimeTravelReport is the time-travel scenario result, part of the
// BENCH_8.json artifact.
type TimeTravelReport struct {
	TilesX     int               `json:"tiles_x"`
	TilesY     int               `json:"tiles_y"`
	TileKB     float64           `json:"tile_kb"`
	Epochs     int               `json:"epochs"`
	Iterations int               `json:"iterations"`
	Workers    int               `json:"workers"`
	Points     []TimeTravelPoint `json:"points"`
	// GroundTruthVerified is true when every diff found exactly the
	// transients the catalog says it decisively must (and none it must
	// not).
	GroundTruthVerified bool `json:"ground_truth_verified"`
}

// TablePoints flattens the report for the text-table printers.
func (r TimeTravelReport) TablePoints() []AblationPoint {
	pts := make([]AblationPoint, 0, 2*len(r.Points))
	for _, p := range r.Points {
		pts = append(pts,
			AblationPoint{Name: fmt.Sprintf("distance %d diff mean", p.Distance), Value: p.DiffMeanMs, Unit: "ms"},
			AblationPoint{Name: fmt.Sprintf("distance %d throughput", p.Distance), Value: p.MBPerS, Unit: "MB/s"},
		)
	}
	return pts
}

// verifyDiffGroundTruth checks one diff result against the catalog's
// analytic prediction: every decisively-expected transient produces a
// candidate on its tile, and no candidate lands on a tile without an
// expected or ambiguous transient.
func verifyDiffGroundTruth(cat *sky.Catalog, d sky.EpochDiff, threshold float64) error {
	expected, ambiguous := cat.ExpectedDiff(d.EpochA, d.EpochB, threshold)
	type tile struct{ x, y int }
	allowed := map[tile]bool{}
	for _, tr := range expected {
		allowed[tile{tr.TileX, tr.TileY}] = true
	}
	for _, tr := range ambiguous {
		allowed[tile{tr.TileX, tr.TileY}] = true
	}
	found := map[tile]bool{}
	for _, c := range d.Candidates {
		tl := tile{c.TileX, c.TileY}
		if !allowed[tl] {
			return fmt.Errorf("bench: diff(%d,%d) found a candidate on quiet tile (%d,%d)",
				d.EpochA, d.EpochB, c.TileX, c.TileY)
		}
		found[tl] = true
	}
	for _, tr := range expected {
		if !found[tile{tr.TileX, tr.TileY}] {
			return fmt.Errorf("bench: diff(%d,%d) missed the decisive transient on tile (%d,%d)",
				d.EpochA, d.EpochB, tr.TileX, tr.TileY)
		}
	}
	return nil
}

// AblateTimeTravel captures `epochs` survey epochs (with one injected
// supernova near the end, so every diff against the final epoch sees a
// decisive change) and then measures DiffEpochs(last-d, last) for each
// version distance d, iters times each.
func AblateTimeTravel(epochs int, distances []int, iters, workers int) (TimeTravelReport, error) {
	geo := sky.Geometry{TilesX: 4, TilesY: 4, TileW: 32, TileH: 32}
	rep := TimeTravelReport{
		TilesX: geo.TilesX, TilesY: geo.TilesY, TileKB: float64(geo.TileBytes()) / 1024,
		Epochs: epochs, Iterations: iters, Workers: workers,
	}
	if iters < 1 {
		iters = 1
		rep.Iterations = 1
	}
	if workers < 1 {
		workers = 4
		rep.Workers = 4
	}
	last := epochs - 1
	for _, d := range distances {
		if d < 1 || d > last {
			return rep, fmt.Errorf("bench: version distance %d out of range with %d epochs", d, epochs)
		}
	}
	cat := sky.NewCatalog(geo, 1717)
	// The supernova peaks one epoch before the end: every diff ending at
	// the last epoch sees a large flux change regardless of distance.
	cat.AddTransient(sky.Transient{
		TileX: 2, TileY: 1, X: 12, Y: 18,
		PeakFlux: 45000, PeakEpoch: last - 1, RiseEpochs: 1, DecayTau: 3,
	})

	sc := DefaultScale()
	sc.MetaPutDelay, sc.MetaProcessDelay = 0, 0
	cl, err := grid5000Cluster(4, sc, -1)
	if err != nil {
		return rep, err
	}
	defer cl.Shutdown()
	sv, client, err := workloadSurvey(cl, cat, 2)
	if err != nil {
		return rep, err
	}
	defer client.Close()
	ctx := context.Background()
	for e := 0; e < epochs; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			return rep, err
		}
	}

	const threshold = 6.0
	rep.GroundTruthVerified = true
	for _, dist := range distances {
		pt := TimeTravelPoint{Distance: dist, EpochA: last - dist, EpochB: last}
		var total time.Duration
		for it := 0; it < iters; it++ {
			t0 := time.Now()
			d, err := sv.DiffEpochs(ctx, pt.EpochA, pt.EpochB, threshold, workers)
			if err != nil {
				return rep, err
			}
			total += time.Since(t0)
			if it == 0 {
				pt.Candidates = len(d.Candidates)
				if err := verifyDiffGroundTruth(cat, d, threshold); err != nil {
					return rep, err
				}
			}
		}
		mean := total / time.Duration(iters)
		pt.DiffMeanMs = mean.Seconds() * 1e3
		tiles := geo.TilesX * geo.TilesY
		pt.TilesPerS = float64(tiles) / mean.Seconds()
		pt.MBPerS = float64(2*geo.SkyBytes()) / mean.Seconds() / (1 << 20)
		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}
