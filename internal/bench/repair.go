package bench

import (
	"context"
	"fmt"
	"os"
	"sort"
	"time"

	"blob/internal/cluster"
	"blob/internal/netsim"
	"blob/internal/repair"
)

// AblateRepair measures the repair subsystem of docs/replication.md:
// a persistent 2-replica deployment loses one provider's entire data
// directory, and the repair agent restores it provider-to-provider. The
// reported points are the time to full redundancy, the volume moved,
// the digest efficiency (fraction of replica slots settled from
// MListWrites bloom digests without a page transfer — on the healthy
// verify pass this is the protocol's steady-state cost), and the read
// p99 while repair traffic competes with foreground reads, against the
// undisturbed baseline.
func AblateRepair(providers int, writes int, segPages uint64, sc Scale) ([]AblationPoint, error) {
	dir, err := os.MkdirTemp("", "blob-bench-repair-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: providers,
		MetaProviders: providers,
		CoLocate:      true,
		DataReplicas:  2,
		DataDir:       dir,
		Net:           netsim.Grid5000(),
	})
	if err != nil {
		return nil, err
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
	if err != nil {
		return nil, err
	}
	seg := make([]byte, segPages*sc.PageSize)
	for i := 0; i < writes; i++ {
		if _, err := b.Write(ctx, seg, uint64(i)*segPages*sc.PageSize); err != nil {
			return nil, err
		}
	}
	fullPages := cl.TotalDataPages()

	readSeg := func() (time.Duration, error) {
		buf := make([]byte, len(seg))
		t0 := time.Now()
		_, err := b.ReadLatest(ctx, buf, 0)
		return time.Since(t0), err
	}
	p99 := func(ds []time.Duration) float64 {
		if len(ds) == 0 {
			return 0
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		return ds[len(ds)*99/100].Seconds() * 1e3
	}

	// Baseline read latency, undisturbed.
	var base []time.Duration
	for i := 0; i < sc.Iterations*4; i++ {
		d, err := readSeg()
		if err != nil {
			return nil, err
		}
		base = append(base, d)
	}

	// Total disk loss on provider 0, then repair while reads compete.
	if err := cl.WipeDataProvider(0); err != nil {
		return nil, err
	}
	c.InvalidateDigests()
	var during []time.Duration
	done := make(chan struct{})
	readErr := make(chan error, 1)
	go func() {
		defer close(readErr)
		for {
			select {
			case <-done:
				return
			default:
			}
			d, err := readSeg()
			if err != nil {
				readErr <- err
				return
			}
			during = append(during, d)
		}
	}()

	agent := repair.New(c)
	t0 := time.Now()
	rep, err := agent.RepairBlob(ctx, b.ID())
	healTime := time.Since(t0)
	close(done)
	if err != nil {
		return nil, err
	}
	if err := <-readErr; err != nil {
		return nil, fmt.Errorf("bench: read during repair: %v", err)
	}
	if !rep.FullyRedundant() {
		return nil, fmt.Errorf("bench: repair left slots degraded: %+v", rep)
	}
	if got := cl.TotalDataPages(); got != fullPages {
		return nil, fmt.Errorf("bench: %d/%d pages after repair", got, fullPages)
	}

	// Verify pass over the healthy cluster: its bloom-skip rate is the
	// digest protocol's steady-state efficiency.
	verify, err := agent.RepairBlob(ctx, b.ID())
	if err != nil {
		return nil, err
	}
	if verify.PagesMissing != 0 {
		return nil, fmt.Errorf("bench: verify pass found %d missing", verify.PagesMissing)
	}
	skipRate := 100 * float64(verify.BloomSkips) / float64(verify.PagesChecked)

	return []AblationPoint{
		{Name: fmt.Sprintf("time to full redundancy, %d pages repaired", rep.PagesRepaired),
			Value: healTime.Seconds() * 1e3, Unit: "ms"},
		{Name: "repair bytes pulled provider-to-provider",
			Value: float64(rep.BytesPulled) / (1 << 20), Unit: "MB"},
		{Name: "bloom-skip hit rate, healthy verify pass",
			Value: skipRate, Unit: "%"},
		{Name: fmt.Sprintf("read p99 during repair (%d reads)", len(during)),
			Value: p99(during), Unit: "ms"},
		{Name: "read p99 baseline",
			Value: p99(base), Unit: "ms"},
	}, nil
}
