package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blob/internal/cluster"
	"blob/internal/erasure"
	"blob/internal/netsim"
	"blob/internal/vmanager"
)

// Version-plane sharding ablation (docs/vmanager-group.md): the paper's
// single version manager serializes every publish; sharding the version
// space across replicated leader groups is the horizontal-scale answer.
// This experiment fixes the writer population and the per-record append
// durability cost (VMAppendDelay, slept under each shard's serializing
// lock) and sweeps the shard count — aggregate publish throughput
// should rise with shards until writers, not leaders, are the
// bottleneck.

// VmshardsPoint is one shard-count measurement.
type VmshardsPoint struct {
	Shards          int     `json:"shards"`
	Replicas        int     `json:"replicas"`
	Publishes       int     `json:"publishes"`
	ElapsedMs       float64 `json:"elapsed_ms"`
	PublishesPerSec float64 `json:"publishes_per_sec"`
	SpeedupVsOne    float64 `json:"speedup_vs_one_shard"`
	// BlobsPerShard is how the writers' blobs spread over the shards —
	// a lopsided spread explains a flat scaling curve.
	BlobsPerShard []int `json:"blobs_per_shard"`
}

// VmshardsReport is the -exp vshards artifact (BENCH_7.json).
type VmshardsReport struct {
	Writers          int             `json:"writers"`
	PerWriter        int             `json:"publishes_per_writer"`
	AppendDelayMicro float64         `json:"append_delay_us"`
	Points           []VmshardsPoint `json:"points"`
}

// AblateVmanagerShards measures aggregate publish throughput (assign +
// commit through the group client) for each shard count, with `writers`
// concurrent writers each publishing `perWriter` versions to its own
// blob. Blobs are spread round-robin over the shards by CreateBlob, so
// every shard carries traffic at every sweep point.
func AblateVmanagerShards(shardCounts []int, replicas, writers, perWriter int, appendDelay time.Duration) (*VmshardsReport, error) {
	rep := &VmshardsReport{
		Writers:          writers,
		PerWriter:        perWriter,
		AppendDelayMicro: float64(appendDelay.Nanoseconds()) / 1e3,
	}
	for _, shards := range shardCounts {
		pt, err := vmshardsPoint(shards, replicas, writers, perWriter, appendDelay)
		if err != nil {
			return nil, fmt.Errorf("vshards %d: %w", shards, err)
		}
		rep.Points = append(rep.Points, pt)
	}
	// Normalize against the slowest-is-one-shard baseline when present.
	for i := range rep.Points {
		if base := rep.Points[0]; base.Shards == 1 && base.PublishesPerSec > 0 {
			rep.Points[i].SpeedupVsOne = rep.Points[i].PublishesPerSec / base.PublishesPerSec
		}
	}
	return rep, nil
}

func vmshardsPoint(shards, replicas, writers, perWriter int, appendDelay time.Duration) (VmshardsPoint, error) {
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 2, MetaProviders: 2,
		Net:           netsim.Fast(),
		VShards:       shards,
		VReplicas:     replicas,
		VMAppendDelay: appendDelay,
	})
	if err != nil {
		return VmshardsPoint{}, err
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return VmshardsPoint{}, err
	}
	defer c.Close()
	vm := c.VersionManager()

	// One blob per writer, placed round-robin across shards.
	blobs := make([]uint64, writers)
	spread := make([]int, shards)
	for w := range blobs {
		if blobs[w], err = vm.CreateBlob(ctx, 64<<10, 64<<20, erasure.Redundancy{}); err != nil {
			return VmshardsPoint{}, err
		}
		spread[vmanager.ShardOf(shards, blobs[w])]++
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	t0 := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				a, err := vm.AssignVersion(ctx, blobs[w], uint64(1000*w+i), 0, 64<<10, false)
				if err == nil {
					_, err = vm.Commit(ctx, blobs[w], a.Version, false)
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("writer %d publish %d: %w", w, i, err)
					}
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	if firstErr != nil {
		return VmshardsPoint{}, firstErr
	}
	total := writers * perWriter
	return VmshardsPoint{
		Shards:          shards,
		Replicas:        replicas,
		Publishes:       total,
		ElapsedMs:       elapsed.Seconds() * 1e3,
		PublishesPerSec: float64(total) / elapsed.Seconds(),
		BlobsPerShard:   spread,
	}, nil
}
