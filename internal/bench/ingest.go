package bench

// Streaming-ingestion workload (docs/workloads.md): continuous survey
// epochs are appended as new blob versions by a background ingestor
// while N detection readers loop over a pinned snapshot with
// ReadPinned. The measurement is the paper's headline claim quantified:
// reader latency with ingestion running vs the same readers on a
// quiescent cluster. Lock-free snapshot reads mean the two p99s should
// sit within noise of each other.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/netsim"
	"blob/internal/sky"
)

// IngestPhaseStats is one phase's reader-side measurement.
type IngestPhaseStats struct {
	Mode       string  `json:"mode"` // "quiescent" or "ingesting"
	Reads      int     `json:"reads"`
	ReadMeanMs float64 `json:"read_mean_ms"`
	ReadP99Ms  float64 `json:"read_p99_ms"`
	// EpochsPublished counts survey epochs the ingestor published while
	// this phase's readers ran (always 0 for the quiescent phase).
	EpochsPublished int `json:"epochs_published"`
}

// IngestReport is the streaming-ingestion scenario result, part of the
// BENCH_8.json artifact.
type IngestReport struct {
	TilesX         int     `json:"tiles_x"`
	TilesY         int     `json:"tiles_y"`
	TileW          int     `json:"tile_w"`
	TileH          int     `json:"tile_h"`
	TileKB         float64 `json:"tile_kb"`
	Readers        int     `json:"readers"`
	ReadsPerReader int     `json:"reads_per_reader"`

	Quiescent IngestPhaseStats `json:"quiescent"`
	Ingesting IngestPhaseStats `json:"ingesting"`

	// P99RatioPct is ingesting p99 / quiescent p99 in percent; 100 means
	// ingestion did not move reader tail latency at all. The acceptance
	// gate is <= 125.
	P99RatioPct float64 `json:"p99_ratio_pct"`
	// SnapshotStable is true when every pinned-snapshot read was
	// byte-identical across the whole run and matched the catalog's
	// ground-truth rendering.
	SnapshotStable bool `json:"snapshot_stable"`
}

// Points flattens the report for the text-table printers.
func (r IngestReport) Points() []AblationPoint {
	return []AblationPoint{
		{Name: "quiescent read mean", Value: r.Quiescent.ReadMeanMs, Unit: "ms"},
		{Name: "quiescent read p99", Value: r.Quiescent.ReadP99Ms, Unit: "ms"},
		{Name: "ingesting read mean", Value: r.Ingesting.ReadMeanMs, Unit: "ms"},
		{Name: "ingesting read p99", Value: r.Ingesting.ReadP99Ms, Unit: "ms"},
		{Name: "p99 ratio (ingest/quiescent)", Value: r.P99RatioPct, Unit: "%"},
		{Name: "epochs published under readers", Value: float64(r.Ingesting.EpochsPublished), Unit: "epochs"},
	}
}

// ingestGeo is the scenario's survey tiling: 6x4 tiles of 32x32 pixels
// (2 KB per tile), small enough that epoch capture publishes at a high
// version rate — the adversarial part is version churn, not bulk bytes.
func ingestGeo() sky.Geometry { return sky.Geometry{TilesX: 6, TilesY: 4, TileW: 32, TileH: 32} }

// workloadSurvey builds a scenario survey on the given cluster: one
// blob whose page size equals the tile size, so one tile read is one
// page fetch. The returned client must outlive the survey; callers
// close it (or shut the whole cluster down) when done.
func workloadSurvey(cl *cluster.Cluster, cat *sky.Catalog, telescopes int) (*sky.Survey, *core.Client, error) {
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return nil, nil, err
	}
	geo := cat.Geometry()
	pageSize := geo.TileBytes()
	pages := uint64(1)
	for pages*pageSize < geo.SkyBytes() {
		pages *= 2
	}
	b, err := c.CreateBlob(ctx, pageSize, pages*pageSize)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	sv, err := sky.NewSurvey(b, cat, telescopes)
	if err != nil {
		c.Close()
		return nil, nil, err
	}
	return sv, c, nil
}

// AblateIngest runs the streaming-ingestion scenario: readers reads of
// one tile each against a pinned epoch-0 snapshot, once on a quiescent
// cluster and once under continuous background epoch ingestion, on the
// simulated Grid'5000 fabric (latencies carry netsim.TimeScale).
func AblateIngest(readers, readsPerReader int) (IngestReport, error) {
	geo := ingestGeo()
	rep := IngestReport{
		TilesX: geo.TilesX, TilesY: geo.TilesY, TileW: geo.TileW, TileH: geo.TileH,
		TileKB:  float64(geo.TileBytes()) / 1024,
		Readers: readers, ReadsPerReader: readsPerReader,
	}
	// 12 storage nodes: the ingest bands stripe over enough NICs that
	// the residual reader slowdown reflects concurrency control (none),
	// not a bandwidth squeeze on a handful of shared NICs — the claim
	// under test is synchronization-freedom, so the fabric is
	// provisioned the way the paper's 50-node testbed was.
	//
	// The fabric carries 4x extra time dilation on top of
	// netsim.TimeScale (latency x bandwidth product invariant, same as
	// the global dilation). This scenario compares two tail latencies of
	// the SAME fabric, so the ratio is dilation-invariant — but the
	// in-process harness noise (GC, goroutine scheduling on small hosts)
	// is real time, and stretching the simulated component shrinks that
	// noise's share of p99 on both sides of the ratio.
	const dilate = 4
	net := netsim.Grid5000()
	net.Latency *= dilate
	net.BandwidthBps /= dilate
	cl, err := cluster.Launch(cluster.Config{
		DataProviders: 12,
		MetaProviders: 12,
		CoLocate:      true,
		Net:           net,
		CacheNodes:    -1,
	})
	if err != nil {
		return rep, err
	}
	defer cl.Shutdown()
	sv, client, err := workloadSurvey(cl, sky.NewCatalog(geo, 88), 2)
	if err != nil {
		return rep, err
	}
	defer client.Close()
	ctx := context.Background()
	// Two seed epochs: epoch 0 is the pinned snapshot under test; a
	// second proves the pin already survives one later version before
	// the storm starts.
	for e := 0; e < 2; e++ {
		if _, err := sv.CaptureEpoch(ctx); err != nil {
			return rep, err
		}
	}

	// Each reader is an independent client with its own connections and
	// simulated NIC — an analysis process, not a thread of the ingestor.
	// The readers persist across both phases, so the byte-stability
	// check spans them: a tile's checksum observed on the quiescent
	// cluster must still match while ingestion hammers the blob.
	prs := make([]*sky.PinnedReader, readers)
	for ri := range prs {
		rc, err := cl.NewClient(ctx)
		if err != nil {
			return rep, err
		}
		defer rc.Close()
		rb, err := rc.OpenBlob(ctx, sv.Blob().ID())
		if err != nil {
			return rep, err
		}
		if prs[ri], err = sv.PinReaderOn(rb, 0); err != nil {
			return rep, err
		}
		// Unmeasured warm-up sweep: dial connections, populate the
		// metadata cache, seed the stability checksums.
		for ty := 0; ty < geo.TilesY; ty++ {
			for tx := 0; tx < geo.TilesX; tx++ {
				if err := prs[ri].ReadTile(ctx, tx, ty); err != nil {
					return rep, err
				}
			}
		}
	}

	rep.SnapshotStable = true
	// phase runs one measured round of a mode and returns the raw read
	// latencies plus the number of epochs the ingestor published during
	// it. The caller interleaves quiescent and ingesting rounds
	// (A/B/A/B…) so that slow environmental drift — GC, scheduler, a
	// shared host — lands on both modes equally instead of biasing
	// whichever phase ran last.
	phase := func(mode string, reads int) ([]time.Duration, int, error) {
		runtime.GC()
		var ing *sky.Ingestor
		if mode == "ingesting" {
			// A short cadence (real time; the fabric is dilated) keeps the
			// version churn high — many epochs publish under the readers —
			// while modeling a survey's fixed exposure rhythm rather than
			// a pathological busy-loop writer. Prerendering keeps pixel
			// synthesis (pure CPU, ~ms per epoch) out of the measured
			// window: on a small host it would otherwise starve reader
			// goroutines and show up as storage-tail noise.
			ing = sky.StartIngest(ctx, sv, sky.IngestOptions{
				Cadence:   15 * time.Millisecond,
				Prerender: 32,
			})
		}
		lats := make([][]time.Duration, readers)
		errs := make([]error, readers)
		var wg sync.WaitGroup
		for ri := 0; ri < readers; ri++ {
			wg.Add(1)
			go func(ri int) {
				defer wg.Done()
				pr := prs[ri]
				rng := rand.New(rand.NewSource(int64(ri)*1000 + 7))
				lat := make([]time.Duration, reads)
				for i := 0; i < reads; i++ {
					tx, ty := rng.Intn(geo.TilesX), rng.Intn(geo.TilesY)
					t0 := time.Now()
					if err := pr.ReadTile(ctx, tx, ty); err != nil {
						errs[ri] = err
						return
					}
					lat[i] = time.Since(t0)
				}
				// End-to-end ground truth: the pinned snapshot still
				// renders epoch 0 exactly.
				for ty := 0; ty < geo.TilesY; ty++ {
					for tx := 0; tx < geo.TilesX; tx++ {
						if err := pr.VerifyAgainstCatalog(ctx, tx, ty); err != nil {
							errs[ri] = err
							return
						}
					}
				}
				lats[ri] = lat
			}(ri)
		}
		wg.Wait()
		published := 0
		if ing != nil {
			n, err := ing.Stop()
			if err != nil {
				return nil, 0, fmt.Errorf("bench: ingestor: %w", err)
			}
			published = n
		}
		var all []time.Duration
		for ri := 0; ri < readers; ri++ {
			if errs[ri] != nil {
				return nil, 0, errs[ri]
			}
			all = append(all, lats[ri]...)
		}
		return all, published, nil
	}

	rounds := 3
	if readsPerReader < 3*10 {
		rounds = 1
	}
	perRound := readsPerReader / rounds
	var qLat, iLat []time.Duration
	for round := 0; round < rounds; round++ {
		lat, _, err := phase("quiescent", perRound)
		if err != nil {
			return rep, err
		}
		qLat = append(qLat, lat...)
		lat, published, err := phase("ingesting", perRound)
		if err != nil {
			return rep, err
		}
		iLat = append(iLat, lat...)
		rep.Ingesting.EpochsPublished += published
	}
	rep.Quiescent.Mode, rep.Ingesting.Mode = "quiescent", "ingesting"
	rep.Quiescent.Reads = len(qLat)
	rep.Quiescent.ReadMeanMs, rep.Quiescent.ReadP99Ms = latStats(qLat)
	rep.Ingesting.Reads = len(iLat)
	rep.Ingesting.ReadMeanMs, rep.Ingesting.ReadP99Ms = latStats(iLat)
	if rep.Ingesting.EpochsPublished == 0 {
		return rep, fmt.Errorf("bench: ingestion phase published no epochs; the scenario measured nothing")
	}
	if rep.Quiescent.ReadP99Ms > 0 {
		rep.P99RatioPct = rep.Ingesting.ReadP99Ms / rep.Quiescent.ReadP99Ms * 100
	}
	return rep, nil
}
