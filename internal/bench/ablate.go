package bench

import (
	"context"
	"fmt"
	"time"

	"blob/internal/cluster"
	"blob/internal/dht"
	"blob/internal/netsim"
	"blob/internal/pmanager"
)

// Ablation experiments for the design choices DESIGN.md calls out:
// RPC aggregation, client metadata caching, placement strategy,
// page-size (striping vs streaming, paper §V.A) and replication cost.

// AblationPoint is one named measurement.
type AblationPoint struct {
	Name  string
	Value float64
	Unit  string
}

// AblateBatching compares storing one write's metadata through the
// aggregated MultiPut path against naive one-RPC-per-node puts — the
// mechanism of paper §V.A ("delays RPC calls to a single machine and
// streams all of them in a single real RPC call").
func AblateBatching(providers int, segPages uint64, sc Scale) ([]AblationPoint, error) {
	cl, err := grid5000Cluster(providers, sc, 0)
	if err != nil {
		return nil, err
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
	if err != nil {
		return nil, err
	}

	// Batched: the normal write path.
	seg := make([]byte, segPages*sc.PageSize)
	var batched time.Duration
	for i := 0; i < sc.Iterations; i++ {
		res, err := b.WriteDetailed(ctx, seg, uint64(i)*2*segPages*sc.PageSize)
		if err != nil {
			return nil, err
		}
		batched += res.MetaTime
	}
	batched /= time.Duration(sc.Iterations)

	// Unbatched: one Put RPC per tree node through the raw DHT client
	// (same nodes, same keys — re-put is idempotent, so timing the
	// duplicate-put path still pays one full network+backend round per
	// node, which is what the ablation isolates).
	kv, err := dht.NewDirectoryClient(ctx, c.Pool(), cl.DirAddr, 1)
	if err != nil {
		return nil, err
	}
	var unbatched time.Duration
	for i := 0; i < sc.Iterations; i++ {
		off := uint64(i) * 2 * segPages * sc.PageSize
		leaves, err := b.ReadMeta(ctx, off, uint64(len(seg)), 0)
		_ = leaves
		if err != nil {
			return nil, err
		}
		// Re-store each node of version i+1's write individually.
		t0 := time.Now()
		for j := uint64(0); j < segPages; j++ {
			key := uint64(i)*segPages + j
			if err := kv.Put(ctx, key|1<<60, []byte("ablate")); err != nil {
				return nil, err
			}
		}
		unbatched += time.Since(t0)
	}
	unbatched /= time.Duration(sc.Iterations)

	return []AblationPoint{
		{Name: "metadata write, aggregated RPC", Value: batched.Seconds() * 1e3, Unit: "ms"},
		{Name: fmt.Sprintf("%d sequential per-node puts", segPages), Value: unbatched.Seconds() * 1e3, Unit: "ms"},
	}, nil
}

// AblateCache measures the metadata read time of the same segment with
// the client cache disabled vs enabled — the mechanism behind the
// "Read (cached metadata)" series of Figure 3c.
func AblateCache(providers int, segPages uint64, sc Scale) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, cacheNodes := range []int{0, -1} {
		cl, err := grid5000Cluster(providers, sc, cacheNodes)
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		c, err := cl.NewClient(ctx)
		if err != nil {
			cl.Shutdown()
			return nil, err
		}
		b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
		if err != nil {
			c.Close()
			cl.Shutdown()
			return nil, err
		}
		seg := make([]byte, segPages*sc.PageSize)
		v, err := b.Write(ctx, seg, 0)
		if err != nil {
			c.Close()
			cl.Shutdown()
			return nil, err
		}
		// Warm once (irrelevant when the cache is disabled).
		if _, err := b.ReadMeta(ctx, 0, uint64(len(seg)), v); err != nil {
			c.Close()
			cl.Shutdown()
			return nil, err
		}
		var total time.Duration
		for i := 0; i < sc.Iterations; i++ {
			t0 := time.Now()
			if _, err := b.ReadMeta(ctx, 0, uint64(len(seg)), v); err != nil {
				c.Close()
				cl.Shutdown()
				return nil, err
			}
			total += time.Since(t0)
		}
		name := "metadata read, cache disabled"
		if cacheNodes != 0 {
			name = "metadata read, cache 2^20 nodes"
		}
		out = append(out, AblationPoint{
			Name:  name,
			Value: (total / time.Duration(sc.Iterations)).Seconds() * 1e3,
			Unit:  "ms",
		})
		c.Close()
		cl.Shutdown()
	}
	return out, nil
}

// AblatePlacement compares the page distribution imbalance of the three
// placement strategies after a burst of writes: max/mean pages per
// provider (1.0 = perfectly balanced).
func AblatePlacement(providers int, writes int, segPages uint64, sc Scale) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, strat := range []pmanager.Strategy{pmanager.RoundRobin, pmanager.LeastLoaded, pmanager.PowerOfTwo} {
		cl, err := cluster.Launch(cluster.Config{
			DataProviders: providers,
			MetaProviders: providers,
			Net:           netsim.Fast(),
			Strategy:      strat,
			CacheNodes:    0,
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		c, err := cl.NewClient(ctx)
		if err != nil {
			cl.Shutdown()
			return nil, err
		}
		b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
		if err != nil {
			c.Close()
			cl.Shutdown()
			return nil, err
		}
		seg := make([]byte, segPages*sc.PageSize)
		for i := 0; i < writes; i++ {
			if _, err := b.Write(ctx, seg, uint64(i)*segPages*sc.PageSize); err != nil {
				c.Close()
				cl.Shutdown()
				return nil, err
			}
		}
		maxPages, total := int64(0), int64(0)
		for _, st := range cl.DataStores {
			n := st.Snapshot().PageCount
			total += n
			if n > maxPages {
				maxPages = n
			}
		}
		mean := float64(total) / float64(len(cl.DataStores))
		out = append(out, AblationPoint{
			Name:  "placement imbalance, " + strat.String(),
			Value: float64(maxPages) / mean,
			Unit:  "max/mean",
		})
		c.Close()
		cl.Shutdown()
	}
	return out, nil
}

// AblatePageSize sweeps the page size for a fixed segment — the
// striping-vs-streaming tradeoff of §V.A: too fine a grain and RPC
// overhead dominates; too coarse and parallelism is lost.
func AblatePageSize(providers int, segBytes uint64, pageSizes []uint64, iterations int) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, ps := range pageSizes {
		sc := Scale{PageSize: ps, BlobPages: 1 << 22, MetaPutDelay: 20 * time.Microsecond, Iterations: iterations}
		cl, err := grid5000Cluster(providers, sc, 0)
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		c, err := cl.NewClient(ctx)
		if err != nil {
			cl.Shutdown()
			return nil, err
		}
		b, err := c.CreateBlob(ctx, ps, sc.BlobPages*ps)
		if err != nil {
			c.Close()
			cl.Shutdown()
			return nil, err
		}
		seg := make([]byte, segBytes)
		var total time.Duration
		for i := 0; i < iterations; i++ {
			t0 := time.Now()
			v, err := b.Write(ctx, seg, uint64(i)*segBytes)
			if err != nil {
				c.Close()
				cl.Shutdown()
				return nil, err
			}
			if _, err := b.Read(ctx, seg, uint64(i)*segBytes, v); err != nil {
				c.Close()
				cl.Shutdown()
				return nil, err
			}
			total += time.Since(t0)
		}
		out = append(out, AblationPoint{
			Name:  fmt.Sprintf("write+read %dKB segment, %dKB pages", segBytes/1024, ps/1024),
			Value: (total / time.Duration(iterations)).Seconds() * 1e3,
			Unit:  "ms",
		})
		c.Close()
		cl.Shutdown()
	}
	return out, nil
}

// AblateReplication measures the write cost of data replication factors.
func AblateReplication(providers int, segPages uint64, factors []int, sc Scale) ([]AblationPoint, error) {
	var out []AblationPoint
	for _, r := range factors {
		cl, err := cluster.Launch(cluster.Config{
			DataProviders: providers,
			MetaProviders: providers,
			CoLocate:      true,
			Net:           netsim.Grid5000(),
			DataReplicas:  r,
			CacheNodes:    0,
			MetaPutDelay:  sc.MetaPutDelay,
		})
		if err != nil {
			return nil, err
		}
		ctx := context.Background()
		c, err := cl.NewClient(ctx)
		if err != nil {
			cl.Shutdown()
			return nil, err
		}
		b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
		if err != nil {
			c.Close()
			cl.Shutdown()
			return nil, err
		}
		seg := make([]byte, segPages*sc.PageSize)
		var total time.Duration
		for i := 0; i < sc.Iterations; i++ {
			t0 := time.Now()
			if _, err := b.Write(ctx, seg, uint64(i)*segPages*sc.PageSize); err != nil {
				c.Close()
				cl.Shutdown()
				return nil, err
			}
			total += time.Since(t0)
		}
		out = append(out, AblationPoint{
			Name:  fmt.Sprintf("write %d pages, %d data replicas", segPages, r),
			Value: (total / time.Duration(sc.Iterations)).Seconds() * 1e3,
			Unit:  "ms",
		})
		c.Close()
		cl.Shutdown()
	}
	return out, nil
}
