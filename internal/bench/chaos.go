package bench

// Gray-failure chaos ablation (docs/robustness.md): read latency with
// one replica of the hot page slowed or stalled — heartbeats keep
// flowing, so the provider manager never notices — across the hedging
// on/off axis, with circuit breakers enabled throughout. The two
// numbers the robustness work is judged by:
//
//   - stalled-replica read p99 with hedging + breakers on must stay
//     within 3x the healthy p99 (the hedge masks the stall per read;
//     the breaker then routes around the peer entirely, so the tail
//     re-converges on healthy speed), and
//   - the no-fault hedge overhead — extra provider requests issued by
//     hedging when nothing is wrong — must stay under 5%.
//
// Both land in the BENCH_10.json artifact.

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"blob/internal/cluster"
	"blob/internal/events"
	"blob/internal/netsim"
)

// ChaosScenario is one cell of the fault x hedging matrix.
type ChaosScenario struct {
	Name    string `json:"name"`
	Hedging bool   `json:"hedging"`
	// Fault names the injected gray failure: "none", "slow" (the hot
	// page's primary replica answers ~100 ms late) or "stall" (it never
	// answers at all; connections stay up, heartbeats keep flowing).
	Fault string `json:"fault"`
	Reads int    `json:"reads"`

	ReadMeanMs float64 `json:"read_mean_ms"`
	ReadP99Ms  float64 `json:"read_p99_ms"`
	// HedgedReads / HedgeWins are the client's hedge counters over the
	// measured window; BreakersOpened counts breaker-open journal
	// events (docs/observability.md).
	HedgedReads    int64 `json:"hedged_reads"`
	HedgeWins      int64 `json:"hedge_wins"`
	BreakersOpened int   `json:"breakers_opened"`
	// ProviderGets is the total page requests the providers saw during
	// the measured window — the denominator of the hedge-overhead gate.
	ProviderGets int64 `json:"provider_gets"`
	// Verified is true when every read returned bytes identical to what
	// was written, fault or not.
	Verified bool `json:"verified"`
}

// ChaosReport is the BENCH_10.json gray-failure artifact.
type ChaosReport struct {
	Providers int             `json:"providers"`
	Replicas  int             `json:"replicas"`
	SegPages  uint64          `json:"seg_pages"`
	Reads     int             `json:"reads"`
	Scenarios []ChaosScenario `json:"scenarios"`

	// HealthyP99Ms and StalledP99Ms are the hedging-on read p99 with no
	// fault and with one stalled replica; StalledSlowdown is their
	// ratio — the "≤ 3x" robustness gate.
	HealthyP99Ms    float64 `json:"healthy_p99_ms"`
	StalledP99Ms    float64 `json:"stalled_p99_ms"`
	StalledSlowdown float64 `json:"stalled_slowdown"`
	// HedgeOverheadPct is the no-fault cost of hedging: extra provider
	// requests per read with hedging on versus off — the "≤ 5%" gate.
	HedgeOverheadPct float64 `json:"hedge_overhead_pct"`
}

// Points flattens the headline numbers for the text-table printers.
func (r ChaosReport) Points() []AblationPoint {
	pts := make([]AblationPoint, 0, len(r.Scenarios)+2)
	for _, s := range r.Scenarios {
		pts = append(pts, AblationPoint{Name: s.Name, Value: s.ReadP99Ms, Unit: "ms p99"})
	}
	pts = append(pts,
		AblationPoint{Name: "stalled/healthy p99 slowdown (gate <= 3)", Value: r.StalledSlowdown, Unit: "x"},
		AblationPoint{Name: "no-fault hedge overhead (gate <= 5)", Value: r.HedgeOverheadPct, Unit: "%"})
	return pts
}

// AblateChaos runs the matrix: 4 storage nodes, 2x replication,
// hedging on/off, one gray-failed replica of the hot pages. Stall with
// hedging off is deliberately absent — an unhedged read of a stalled
// replica blocks until its deadline, which is the failure mode the
// rest of the matrix exists to price.
func AblateChaos(reads int) (ChaosReport, error) {
	rep := ChaosReport{Providers: 4, Replicas: 2, SegPages: 16, Reads: reads}
	cells := []struct {
		name    string
		hedging bool
		fault   string
	}{
		{"healthy, hedging off", false, "none"},
		{"healthy, hedging on", true, "none"},
		{"slow replica, hedging off", false, "slow"},
		{"slow replica, hedging on", true, "slow"},
		{"stalled replica, hedging on", true, "stall"},
	}
	for _, c := range cells {
		s, err := chaosCell(c.name, c.hedging, c.fault, rep, reads)
		if err != nil {
			return rep, fmt.Errorf("bench: chaos %q: %w", c.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, s)
	}
	var healthyOff, healthyOn, stalled ChaosScenario
	for _, s := range rep.Scenarios {
		switch {
		case s.Fault == "none" && !s.Hedging:
			healthyOff = s
		case s.Fault == "none" && s.Hedging:
			healthyOn = s
		case s.Fault == "stall":
			stalled = s
		}
	}
	rep.HealthyP99Ms = healthyOn.ReadP99Ms
	rep.StalledP99Ms = stalled.ReadP99Ms
	if healthyOn.ReadP99Ms > 0 {
		rep.StalledSlowdown = stalled.ReadP99Ms / healthyOn.ReadP99Ms
	}
	if healthyOff.ProviderGets > 0 {
		rep.HedgeOverheadPct = 100 * (float64(healthyOn.ProviderGets)/float64(healthyOff.ProviderGets) - 1)
	}
	return rep, nil
}

// chaosCell measures one scenario on a fresh cluster, so breaker state
// and latency EWMAs never leak between cells.
func chaosCell(name string, hedging bool, fault string, rep ChaosReport, reads int) (ChaosScenario, error) {
	sc := ChaosScenario{Name: name, Hedging: hedging, Fault: fault, Reads: reads}
	cl, err := cluster.Launch(cluster.Config{
		DataProviders:  rep.Providers,
		MetaProviders:  rep.Providers,
		CoLocate:       true,
		DataReplicas:   rep.Replicas,
		Net:            netsim.Grid5000(),
		CacheNodes:     -1, // warm metadata cache: the measured path is data fetches
		Breakers:       true,
		DisableHedging: !hedging,
	})
	if err != nil {
		return sc, err
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return sc, err
	}
	defer c.Close()

	const pageSize = 4 << 10
	segBytes := rep.SegPages * pageSize
	b, err := c.CreateBlob(ctx, pageSize, 4*segBytes)
	if err != nil {
		return sc, err
	}
	data := make([]byte, segBytes)
	for i := range data {
		data[i] = byte(i*13 + 7)
	}
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		return sc, err
	}
	// Unmeasured warm-up: dial the connections and seed each provider's
	// latency tracker past its minimum sample count, so the hedge delay
	// in the measured window is the adaptive one, not the cold default.
	got := make([]byte, segBytes)
	for i := 0; i < 4; i++ {
		if _, err := b.Read(ctx, got, 0, v); err != nil {
			return sc, err
		}
	}

	// Gray-fail the primary replica of page 0 — the provider every read
	// of this segment asks first. Its heartbeats keep flowing, so the
	// provider manager never reroutes around it; only the client-side
	// hedges and breakers can.
	leaves, err := b.ReadMeta(ctx, 0, pageSize, v)
	if err != nil {
		return sc, err
	}
	if len(leaves) == 0 || len(leaves[0].Leaf.Providers) < rep.Replicas {
		return sc, fmt.Errorf("page 0 has no full replica tier")
	}
	victim := int(leaves[0].Leaf.Providers[0]) - 1
	switch fault {
	case "slow":
		cl.SlowProvider(victim, 100*time.Millisecond, 10*time.Millisecond)
	case "stall":
		cl.StallProvider(victim)
	}
	defer cl.Heal()

	gets0 := providerGets(cl, rep.Providers)
	hedged0, wins0 := c.HedgedReads.Value(), c.HedgeWins.Value()
	sc.Verified = true
	lat := make([]time.Duration, reads)
	for i := 0; i < reads; i++ {
		rctx, cancel := context.WithTimeout(ctx, 30*time.Second)
		clear(got)
		t0 := time.Now()
		_, err := b.Read(rctx, got, 0, v)
		lat[i] = time.Since(t0)
		cancel()
		if err != nil {
			return sc, err
		}
		if !bytes.Equal(got, data) {
			sc.Verified = false
		}
	}
	sc.ReadMeanMs, sc.ReadP99Ms = latStats(lat)
	sc.ProviderGets = providerGets(cl, rep.Providers) - gets0
	sc.HedgedReads = c.HedgedReads.Value() - hedged0
	sc.HedgeWins = c.HedgeWins.Value() - wins0
	for _, e := range cl.Events() {
		if e.Type == events.BreakerOpen {
			sc.BreakersOpened++
		}
	}
	if !sc.Verified {
		return sc, fmt.Errorf("reads under fault %q served bytes differing from what was written", fault)
	}
	return sc, nil
}

// providerGets sums the page-request counters across the data
// providers.
func providerGets(cl *cluster.Cluster, n int) int64 {
	var total int64
	for i := 0; i < n; i++ {
		total += cl.DataServices[i].Snapshot().Gets
	}
	return total
}
