package bench

// Galaxy-Zoo swarm workload (docs/workloads.md): a crowd of classifiers
// each fetching one tiny random cutout of the same hot published
// version — the exact adversary of the large-sequential Figure 3
// benches. The interesting numbers are aggregate reads/s and the
// per-read allocation budget of the zero-copy read path; every read is
// a pinned-snapshot read, so the swarm never queues on the version
// manager.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"blob/internal/sky"
)

// SwarmReport is the Galaxy-Zoo swarm scenario result, part of the
// BENCH_8.json artifact.
type SwarmReport struct {
	TilesX         int     `json:"tiles_x"`
	TilesY         int     `json:"tiles_y"`
	TileBytes      uint64  `json:"tile_bytes"`
	Readers        int     `json:"readers"`
	ReadsPerReader int     `json:"reads_per_reader"`
	TotalReads     int     `json:"total_reads"`
	ElapsedSec     float64 `json:"elapsed_sec"`
	ReadsPerSec    float64 `json:"reads_per_sec"`
	ReadMeanMs     float64 `json:"read_mean_ms"`
	ReadP99Ms      float64 `json:"read_p99_ms"`
	AllocsPerRead  float64 `json:"allocs_per_read"`
	KBPerRead      float64 `json:"kb_per_read"`
	// Verified is true when every tile's bytes stayed identical across
	// all rereads and matched the catalog rendering.
	Verified bool `json:"verified"`
}

// Points flattens the report for the text-table printers.
func (r SwarmReport) Points() []AblationPoint {
	return []AblationPoint{
		{Name: "aggregate tiny reads", Value: r.ReadsPerSec, Unit: "reads/s"},
		{Name: "read mean", Value: r.ReadMeanMs, Unit: "ms"},
		{Name: "read p99", Value: r.ReadP99Ms, Unit: "ms"},
		{Name: "allocs per read", Value: r.AllocsPerRead, Unit: "allocs"},
		{Name: "KB allocated per read", Value: r.KBPerRead, Unit: "KB"},
	}
}

// AblateSwarm runs the swarm: readers goroutines, each performing
// readsPerReader random single-tile reads of the hot (latest) version
// over the simulated Grid'5000 fabric. Latencies carry
// netsim.TimeScale; reads/s divides it back out for comparison with
// real hardware.
func AblateSwarm(readers, readsPerReader int) (SwarmReport, error) {
	// 8x8 tiles of 16x16 pixels: 512-byte cutouts, the "tiny random
	// read" shape of crowd classification traffic.
	geo := sky.Geometry{TilesX: 8, TilesY: 8, TileW: 16, TileH: 16}
	rep := SwarmReport{
		TilesX: geo.TilesX, TilesY: geo.TilesY, TileBytes: geo.TileBytes(),
		Readers: readers, ReadsPerReader: readsPerReader,
	}
	sc := DefaultScale()
	sc.MetaPutDelay, sc.MetaProcessDelay = 0, 0
	cl, err := grid5000Cluster(4, sc, -1)
	if err != nil {
		return rep, err
	}
	defer cl.Shutdown()
	sv, client, err := workloadSurvey(cl, sky.NewCatalog(geo, 4242), 2)
	if err != nil {
		return rep, err
	}
	defer client.Close()
	ctx := context.Background()
	if _, err := sv.CaptureEpoch(ctx); err != nil {
		return rep, err
	}

	// One independent client per swarm reader — a crowd of classifiers,
	// each with its own connections and simulated NIC.
	prs := make([]*sky.PinnedReader, readers)
	for ri := range prs {
		rc, err := cl.NewClient(ctx)
		if err != nil {
			return rep, err
		}
		defer rc.Close()
		rb, err := rc.OpenBlob(ctx, sv.Blob().ID())
		if err != nil {
			return rep, err
		}
		if prs[ri], err = sv.PinReaderOn(rb, 0); err != nil {
			return rep, err
		}
	}
	// Unmeasured warm-up: every reader sweeps the sky once, dialing its
	// connections, filling its metadata cache and seeding the stability
	// checksums, so the measured window is steady-state swarm traffic.
	var warmWg sync.WaitGroup
	warmErrs := make([]error, readers)
	for ri := 0; ri < readers; ri++ {
		warmWg.Add(1)
		go func(ri int) {
			defer warmWg.Done()
			for ty := 0; ty < geo.TilesY; ty++ {
				for tx := 0; tx < geo.TilesX; tx++ {
					if err := prs[ri].ReadTile(ctx, tx, ty); err != nil {
						warmErrs[ri] = err
						return
					}
				}
			}
		}(ri)
	}
	warmWg.Wait()
	for _, err := range warmErrs {
		if err != nil {
			return rep, err
		}
	}

	lats := make([][]time.Duration, readers)
	errs := make([]error, readers)
	var wg sync.WaitGroup
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	m0, b0 := ms.Mallocs, ms.TotalAlloc
	t0 := time.Now()
	for ri := 0; ri < readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			pr := prs[ri]
			rng := rand.New(rand.NewSource(int64(ri)*31 + 5))
			lat := make([]time.Duration, readsPerReader)
			for i := 0; i < readsPerReader; i++ {
				tx, ty := rng.Intn(geo.TilesX), rng.Intn(geo.TilesY)
				s0 := time.Now()
				if err := pr.ReadTile(ctx, tx, ty); err != nil {
					errs[ri] = err
					return
				}
				lat[i] = time.Since(s0)
			}
			lats[ri] = lat
		}(ri)
	}
	wg.Wait()
	elapsed := time.Since(t0)
	runtime.ReadMemStats(&ms)

	var all []time.Duration
	for ri := 0; ri < readers; ri++ {
		if errs[ri] != nil {
			return rep, errs[ri]
		}
		all = append(all, lats[ri]...)
	}
	rep.TotalReads = len(all)
	rep.ElapsedSec = elapsed.Seconds()
	rep.ReadsPerSec = float64(rep.TotalReads) / elapsed.Seconds()
	rep.ReadMeanMs, rep.ReadP99Ms = latStats(all)
	rep.AllocsPerRead = float64(ms.Mallocs-m0) / float64(rep.TotalReads)
	rep.KBPerRead = float64(ms.TotalAlloc-b0) / float64(rep.TotalReads) / 1024
	if rep.AllocsPerRead <= 0 {
		return rep, fmt.Errorf("bench: degenerate swarm alloc measurement")
	}

	// Correctness half: rereads were checksum-stable per reader (a
	// ReadTile failure would have surfaced above); finish with one full
	// catalog-ground-truth sweep.
	pr := prs[0]
	for ty := 0; ty < geo.TilesY; ty++ {
		for tx := 0; tx < geo.TilesX; tx++ {
			if err := pr.VerifyAgainstCatalog(ctx, tx, ty); err != nil {
				return rep, err
			}
		}
	}
	rep.Verified = true
	return rep, nil
}
