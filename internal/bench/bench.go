// Package bench implements the experiment harness that regenerates every
// figure of the paper's evaluation (§V, Figure 3a/3b/3c), plus the
// ablations of the design choices DESIGN.md calls out. The same points
// are driven both by the root-level testing.B benchmarks and by
// cmd/blobbench, which prints full tables.
//
// Scaling: the paper ran on 50 Grid'5000 nodes with a real 1 Gbit/s
// network, a 1 TB string and 64 KB pages. We run the same process
// topology over internal/netsim with the measured Grid'5000 parameters
// (117.5 MB/s per NIC, 0.1 ms latency) and scale the string and segment
// sizes down so a full sweep finishes in CI time. The claims under test
// are shapes, not absolute numbers: how metadata cost scales with
// segment size and provider count, and how per-client bandwidth holds as
// concurrency grows.
package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blob/internal/cluster"
	"blob/internal/core"
	"blob/internal/meta"
	"blob/internal/netsim"
)

// Scale gathers the knobs that map the paper's sizes onto CI-friendly
// ones.
type Scale struct {
	// PageSize is the blob page size in bytes (paper: 64 KB).
	PageSize uint64
	// BlobPages is the virtual blob size in pages (paper: 2^24 pages =
	// 1 TB; allocate-on-write makes the virtual size nearly free, but
	// tree height = log2(BlobPages) drives metadata cost, so we keep it
	// large).
	BlobPages uint64
	// MetaPutDelay models the metadata backend per-put cost. Calibrated
	// against the paper's Figure 3b (~3 ms per node through BambooDHT's
	// replicated, disk-backed put path), times netsim.TimeScale.
	MetaPutDelay time.Duration
	// MetaProcessDelay models the client per-node deserialization cost.
	// Calibrated against Figure 3a (~0.1 ms per node for the paper's
	// client stack), times netsim.TimeScale.
	MetaProcessDelay time.Duration
	// Iterations averages each point over this many operations.
	Iterations int
}

// DefaultScale is used by the benchmarks: 4 KB pages over a 2^24-page
// (64 GB virtual) blob — same tree height (25) as the paper's 1 TB at
// 64 KB pages. Delays carry the netsim.TimeScale dilation; divide
// measured durations by netsim.TimeScale to compare with the paper.
func DefaultScale() Scale {
	return Scale{
		PageSize:         4 << 10,
		BlobPages:        1 << 24,
		MetaPutDelay:     netsim.TimeScale * 3 * time.Millisecond,
		MetaProcessDelay: netsim.TimeScale * 100 * time.Microsecond,
		Iterations:       5,
	}
}

// grid5000Cluster launches the paper's topology: n storage nodes, each
// co-hosting one data provider and one metadata provider, plus the two
// dedicated manager nodes.
func grid5000Cluster(n int, sc Scale, cacheNodes int) (*cluster.Cluster, error) {
	return cluster.Launch(cluster.Config{
		DataProviders:    n,
		MetaProviders:    n,
		CoLocate:         true,
		Net:              netsim.Grid5000(),
		CacheNodes:       cacheNodes,
		MetaPutDelay:     sc.MetaPutDelay,
		MetaProcessDelay: sc.MetaProcessDelay,
	})
}

// MetaPoint is one measurement of Figure 3a/3b: the time to completely
// read (or write) the metadata of one segment.
type MetaPoint struct {
	Providers  int
	SegmentKB  int
	MeanTime   time.Duration
	TreeHeight int
}

// Fig3aMetadataRead measures the metadata-read overhead for a single
// client (Figure 3a): segment of segPages pages on a deployment of
// providers storage nodes. Client-side caching is disabled, as in the
// paper's worst-case methodology.
func Fig3aMetadataRead(providers int, segPages uint64, sc Scale) (MetaPoint, error) {
	pt := MetaPoint{Providers: providers, SegmentKB: int(segPages * sc.PageSize / 1024)}
	// Only the read side is measured; skip the backend put cost so the
	// setup writes don't dominate wall time.
	scRead := sc
	scRead.MetaPutDelay = 0
	cl, err := grid5000Cluster(providers, scRead, 0)
	if err != nil {
		return pt, err
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return pt, err
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
	if err != nil {
		return pt, err
	}
	pt.TreeHeight = meta.TreeHeight(sc.BlobPages)

	seg := make([]byte, segPages*sc.PageSize)
	var total time.Duration
	for i := 0; i < sc.Iterations; i++ {
		off := uint64(i) * 4 * segPages * sc.PageSize
		v, err := b.Write(ctx, seg, off)
		if err != nil {
			return pt, err
		}
		t0 := time.Now()
		if _, err := b.ReadMeta(ctx, off, uint64(len(seg)), v); err != nil {
			return pt, err
		}
		total += time.Since(t0)
	}
	pt.MeanTime = total / time.Duration(sc.Iterations)
	return pt, nil
}

// Fig3bMetadataWrite measures the metadata-write overhead for a single
// client (Figure 3b): the Build+Store phase of a WRITE.
func Fig3bMetadataWrite(providers int, segPages uint64, sc Scale) (MetaPoint, error) {
	pt := MetaPoint{Providers: providers, SegmentKB: int(segPages * sc.PageSize / 1024)}
	cl, err := grid5000Cluster(providers, sc, 0)
	if err != nil {
		return pt, err
	}
	defer cl.Shutdown()
	ctx := context.Background()
	c, err := cl.NewClient(ctx)
	if err != nil {
		return pt, err
	}
	defer c.Close()
	b, err := c.CreateBlob(ctx, sc.PageSize, sc.BlobPages*sc.PageSize)
	if err != nil {
		return pt, err
	}
	pt.TreeHeight = meta.TreeHeight(sc.BlobPages)

	seg := make([]byte, segPages*sc.PageSize)
	var total time.Duration
	for i := 0; i < sc.Iterations; i++ {
		off := uint64(i) * 4 * segPages * sc.PageSize
		res, err := b.WriteDetailed(ctx, seg, off)
		if err != nil {
			return pt, err
		}
		total += res.MetaTime
	}
	pt.MeanTime = total / time.Duration(sc.Iterations)
	return pt, nil
}

// Mode selects the Figure 3c access pattern.
type Mode int

// Figure 3c series.
const (
	// ModeRead — concurrent readers, client metadata cache disabled
	// (the paper's worst case).
	ModeRead Mode = iota
	// ModeWrite — concurrent writers.
	ModeWrite
	// ModeReadCached — concurrent readers with a warm metadata cache.
	ModeReadCached
)

// String names the mode like the paper's legend.
func (m Mode) String() string {
	switch m {
	case ModeRead:
		return "Read"
	case ModeWrite:
		return "Write"
	case ModeReadCached:
		return "Read (cached metadata)"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ThroughputPoint is one measurement of Figure 3c.
type ThroughputPoint struct {
	Clients int
	Mode    Mode
	// PerClientMBps is the average bandwidth per client in MB/s — the
	// paper's y-axis.
	PerClientMBps float64
	// AggregateMBps is the total system throughput.
	AggregateMBps float64
}

// Fig3cScale are the scaled-down workload parameters for the throughput
// experiment: 20 storage nodes, 16 KB pages, 32-page (512 KB) segments
// within a 2^10-page (16 MB) region (the paper used 64 KB pages, 8 MB
// segments inside a 1 GB region of a 1 TB string, 100 iterations).
type Fig3cScale struct {
	StorageNodes int
	PageSize     uint64
	RegionPages  uint64
	SegPages     uint64
	Iterations   int
}

// DefaultFig3cScale returns the CI-friendly scaling.
func DefaultFig3cScale() Fig3cScale {
	return Fig3cScale{
		StorageNodes: 20,
		PageSize:     16 << 10,
		RegionPages:  1 << 10,
		SegPages:     32,
		Iterations:   5,
	}
}

// Fig3cThroughput measures average per-client bandwidth with nclients
// concurrent clients in the given mode (Figure 3c). Clients access
// disjoint segments within the region in a loop, starting simultaneously
// and running without any synchronization, as in the paper.
func Fig3cThroughput(nclients int, mode Mode, fs Fig3cScale, sc Scale) (ThroughputPoint, error) {
	pt := ThroughputPoint{Clients: nclients, Mode: mode}
	cacheNodes := 0
	if mode == ModeReadCached {
		cacheNodes = -1 // the paper's 2^20-node cache
	}
	cl, err := grid5000Cluster(fs.StorageNodes, sc, cacheNodes)
	if err != nil {
		return pt, err
	}
	defer cl.Shutdown()
	ctx := context.Background()

	admin, err := cl.NewClient(ctx)
	if err != nil {
		return pt, err
	}
	defer admin.Close()
	blob, err := admin.CreateBlob(ctx, fs.PageSize, fs.RegionPages*fs.PageSize)
	if err != nil {
		return pt, err
	}

	// For read modes, pre-populate the region so reads hit real pages.
	// Setup is not part of the measurement: suspend the backend put
	// model and fan the fill out over several writers.
	if mode != ModeWrite {
		for _, st := range cl.MetaStores {
			st.PutDelay = 0
		}
		const fillers = 4
		chunkPages := fs.RegionPages / fillers
		var wg sync.WaitGroup
		fillErrs := make([]error, fillers)
		for f := 0; f < fillers; f++ {
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				fc, err := cl.NewClientAt(ctx, fmt.Sprintf("fill%d", f))
				if err != nil {
					fillErrs[f] = err
					return
				}
				defer fc.Close()
				fb, err := fc.OpenBlob(ctx, blob.ID())
				if err != nil {
					fillErrs[f] = err
					return
				}
				buf := make([]byte, chunkPages*fs.PageSize)
				_, fillErrs[f] = fb.Write(ctx, buf, uint64(f)*chunkPages*fs.PageSize)
			}(f)
		}
		wg.Wait()
		for _, err := range fillErrs {
			if err != nil {
				return pt, err
			}
		}
		for _, st := range cl.MetaStores {
			st.PutDelay = sc.MetaPutDelay
		}
	}

	// One client per simulated host, as in the paper's deployment.
	clients := make([]*core.Client, nclients)
	blobs := make([]*core.Blob, nclients)
	for i := range clients {
		clients[i], err = cl.NewClientAt(ctx, fmt.Sprintf("bclient%d", i))
		if err != nil {
			return pt, err
		}
		defer clients[i].Close()
		blobs[i], err = clients[i].OpenBlob(ctx, blob.ID())
		if err != nil {
			return pt, err
		}
	}

	// Warm the metadata caches for the cached-read series (in parallel;
	// warming is setup, not measurement).
	if mode == ModeReadCached {
		var wg sync.WaitGroup
		warmErrs := make([]error, nclients)
		for i := range blobs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				seg := make([]byte, fs.SegPages*fs.PageSize)
				for it := 0; it < fs.Iterations; it++ {
					off := segmentOffset(i, it, nclients, fs)
					if _, err := blobs[i].ReadLatest(ctx, seg, off); err != nil {
						warmErrs[i] = err
						return
					}
				}
			}(i)
		}
		wg.Wait()
		for _, err := range warmErrs {
			if err != nil {
				return pt, err
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, nclients)
	start := time.Now()
	for i := 0; i < nclients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seg := make([]byte, fs.SegPages*fs.PageSize)
			for it := 0; it < fs.Iterations; it++ {
				off := segmentOffset(i, it, nclients, fs)
				var err error
				if mode == ModeWrite {
					_, err = blobs[i].Write(ctx, seg, off)
				} else {
					_, err = blobs[i].ReadLatest(ctx, seg, off)
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return pt, err
		}
	}
	perClientBytes := float64(fs.Iterations) * float64(fs.SegPages*fs.PageSize)
	pt.PerClientMBps = perClientBytes / elapsed / 1e6
	pt.AggregateMBps = pt.PerClientMBps * float64(nclients)
	return pt, nil
}

// segmentOffset places client i's iteration it at a segment disjoint
// from every other concurrently active segment, wrapping around the
// region like the paper's disjoint-segment loop.
func segmentOffset(i, it, nclients int, fs Fig3cScale) uint64 {
	slots := fs.RegionPages / fs.SegPages
	slot := uint64(it*nclients+i) % slots
	return slot * fs.SegPages * fs.PageSize
}
