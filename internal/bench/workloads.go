package bench

// WorkloadSuiteReport aggregates the three traffic-shape scenarios
// (docs/workloads.md) into the BENCH_8.json artifact: streaming survey
// ingestion vs pinned readers, the Galaxy-Zoo tiny-read swarm, and
// time-travel diff analytics across version distance.
type WorkloadSuiteReport struct {
	Ingest     IngestReport     `json:"ingest"`
	Swarm      SwarmReport      `json:"swarm"`
	TimeTravel TimeTravelReport `json:"timetravel"`
}

// WorkloadParams sizes a full suite run; cmd/blobbench shrinks it for
// -quick smoke runs.
type WorkloadParams struct {
	IngestReaders, IngestReadsPerReader int
	SwarmReaders, SwarmReadsPerReader   int
	TimeTravelEpochs                    int
	TimeTravelDistances                 []int
	TimeTravelIters                     int
	TimeTravelWorkers                   int
}

// DefaultWorkloadParams is the committed-artifact scale.
func DefaultWorkloadParams() WorkloadParams {
	return WorkloadParams{
		IngestReaders: 8, IngestReadsPerReader: 150,
		SwarmReaders: 16, SwarmReadsPerReader: 250,
		TimeTravelEpochs:    10,
		TimeTravelDistances: []int{1, 2, 4, 8},
		TimeTravelIters:     3,
		TimeTravelWorkers:   8,
	}
}

// QuickWorkloadParams is the CI bench-smoke scale.
func QuickWorkloadParams() WorkloadParams {
	return WorkloadParams{
		IngestReaders: 4, IngestReadsPerReader: 40,
		SwarmReaders: 8, SwarmReadsPerReader: 60,
		TimeTravelEpochs:    6,
		TimeTravelDistances: []int{1, 4},
		TimeTravelIters:     1,
		TimeTravelWorkers:   4,
	}
}

// RunWorkloads runs all three scenarios and returns the combined
// report.
func RunWorkloads(p WorkloadParams) (WorkloadSuiteReport, error) {
	var rep WorkloadSuiteReport
	var err error
	if rep.Ingest, err = AblateIngest(p.IngestReaders, p.IngestReadsPerReader); err != nil {
		return rep, err
	}
	if rep.Swarm, err = AblateSwarm(p.SwarmReaders, p.SwarmReadsPerReader); err != nil {
		return rep, err
	}
	rep.TimeTravel, err = AblateTimeTravel(p.TimeTravelEpochs, p.TimeTravelDistances, p.TimeTravelIters, p.TimeTravelWorkers)
	return rep, err
}
