package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"blob/internal/diskstore"
)

// AblateRestart measures provider restart cost as a function of on-disk
// footprint — the recovery-time bottleneck the index sidecars exist for.
// A diskstore is filled until it holds `segments` sealed segment files of
// segmentSize bytes, closed, and reopened two ways: with its index
// sidecars (restart reads O(live index) bytes) and with every .idx file
// deleted (the pre-sidecar behaviour: every segment's data is replayed).
// Both reopens must reach the identical page set; the reported points
// are the wall-clock reopen times and the segment-file bytes each
// recovery actually read.
func AblateRestart(segments int, segmentSize int64) ([]AblationPoint, error) {
	dir, err := os.MkdirTemp("", "blob-bench-restart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	opts := diskstore.Options{Dir: dir, SegmentSize: segmentSize}

	s, err := diskstore.Open(opts)
	if err != nil {
		return nil, err
	}
	page := make([]byte, 8<<10)
	for w := uint64(1); s.Stats().Segments <= int64(segments); w++ {
		if _, err := s.PutPages([]diskstore.Page{{Blob: 1, Write: w, Rel: 0, Data: page}}); err != nil {
			s.Close()
			return nil, err
		}
	}
	wantPages := s.Stats().Pages
	if err := s.Close(); err != nil {
		return nil, err
	}

	reopen := func() (time.Duration, diskstore.Stats, error) {
		t0 := time.Now()
		s, err := diskstore.Open(opts)
		if err != nil {
			return 0, diskstore.Stats{}, err
		}
		d := time.Since(t0)
		st := s.Stats()
		err = s.Close()
		if st.Pages != wantPages {
			return 0, st, fmt.Errorf("bench: restart recovered %d pages, want %d", st.Pages, wantPages)
		}
		return d, st, err
	}

	sideTime, sideStats, err := reopen()
	if err != nil {
		return nil, err
	}

	// Delete every sidecar: the next open degrades to the full replay.
	idxs, err := filepath.Glob(filepath.Join(dir, "*.idx"))
	if err != nil {
		return nil, err
	}
	for _, idx := range idxs {
		if err := os.Remove(idx); err != nil {
			return nil, err
		}
	}
	replayTime, replayStats, err := reopen()
	if err != nil {
		return nil, err
	}

	return []AblationPoint{
		{Name: fmt.Sprintf("reopen %d segments, sidecar index", segments), Value: sideTime.Seconds() * 1e3, Unit: "ms"},
		{Name: fmt.Sprintf("reopen %d segments, full replay", segments), Value: replayTime.Seconds() * 1e3, Unit: "ms"},
		{Name: "segment bytes read, sidecar index", Value: float64(sideStats.ReplayedBytes) / (1 << 20), Unit: "MB"},
		{Name: "segment bytes read, full replay", Value: float64(replayStats.ReplayedBytes) / (1 << 20), Unit: "MB"},
		{Name: "sidecar bytes read", Value: float64(sideStats.SidecarBytes) / (1 << 20), Unit: "MB"},
	}, nil
}
