package events

import (
	"fmt"

	"blob/internal/wire"
)

// MEvents is the RPC method every instrumented node serves (the rpc
// server registers it when given a journal): it returns the node's
// event ring, optionally filtered by sequence and severity.
//
//	request:  uvarint sinceSeq | u8 minSeverity (empty body = everything)
//	response: uvarint latestSeq | uvarint n | n × event (see EncodeEvents)
//
// latestSeq is the journal's newest sequence number regardless of the
// filter. A poller holding a cursor above it knows the node restarted
// (journal seqs begin again at 1) and resets its cursor instead of
// skipping every event the reborn journal will ever emit.
const MEvents = 0x0701

// EncodeEventsQuery builds an MEvents request body.
func EncodeEventsQuery(sinceSeq uint64, minSev Severity) []byte {
	w := wire.NewWriter(12)
	w.Uvarint(sinceSeq)
	w.Uint8(uint8(minSev))
	return w.Bytes()
}

// DecodeEventsQuery parses an MEvents request body. An empty body asks
// for everything.
func DecodeEventsQuery(body []byte) (uint64, Severity, error) {
	if len(body) == 0 {
		return 0, SevInfo, nil
	}
	r := wire.NewReader(body)
	since := r.Uvarint()
	sev := Severity(r.Uint8())
	return since, sev, r.Err()
}

// EncodeEvents serializes events as an MEvents response. latestSeq is
// the journal's newest sequence number (LatestSeq), echoed so pollers
// can detect a journal reborn by a process restart.
func EncodeEvents(latestSeq uint64, evs []Event) []byte {
	w := wire.NewWriter(48 * (1 + len(evs)))
	w.Uvarint(latestSeq)
	w.Uvarint(uint64(len(evs)))
	for _, e := range evs {
		w.Uvarint(e.Seq)
		w.Varint(e.Time)
		w.Uint8(uint8(e.Sev))
		w.Uvarint(uint64(e.Type))
		w.String(e.Node)
		w.String(e.Msg)
		w.Varint(e.Val)
	}
	return w.Bytes()
}

// DecodeEvents parses an MEvents response.
func DecodeEvents(body []byte) (latestSeq uint64, evs []Event, err error) {
	r := wire.NewReader(body)
	latestSeq = r.Uvarint()
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return 0, nil, fmt.Errorf("events: decode events: %w", err)
	}
	// Each event costs at least 8 bytes on the wire; reject counts a
	// corrupt frame could not actually carry before allocating.
	if n < 0 || n > r.Remaining()/8+1 {
		return 0, nil, fmt.Errorf("events: event count %d exceeds body", n)
	}
	out := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		e := Event{
			Seq:  r.Uvarint(),
			Time: r.Varint(),
			Sev:  Severity(r.Uint8()),
			Type: Type(r.Uvarint()),
			Node: r.String(),
			Msg:  r.String(),
			Val:  r.Varint(),
		}
		if err := r.Err(); err != nil {
			return 0, nil, fmt.Errorf("events: decode event %d: %w", i, err)
		}
		out = append(out, e)
	}
	return latestSeq, out, nil
}
