package events

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// eventTypeConstants parses this package's sources and returns every
// exported constant of type Type.
func eventTypeConstants(t *testing.T) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		t.Fatalf("parse events package: %v", err)
	}
	var names []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				inTypeBlock := false
				for _, spec := range gd.Specs {
					vs := spec.(*ast.ValueSpec)
					// In an iota block only the first spec names the
					// type; later specs inherit it.
					if vs.Type != nil {
						id, ok := vs.Type.(*ast.Ident)
						inTypeBlock = ok && id.Name == "Type"
					}
					if !inTypeBlock {
						continue
					}
					for _, n := range vs.Names {
						if ast.IsExported(n.Name) {
							names = append(names, n.Name)
						}
					}
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("found no exported Type constants")
	}
	return names
}

// TestEventTypesCovered is the drift gate for the event vocabulary:
// every exported event type constant must (a) have a label in the
// labels table and (b) appear at an emit site in non-test code outside
// this package. A constant added without wiring it anywhere — or an
// emit site removed without retiring the constant — fails here.
func TestEventTypesCovered(t *testing.T) {
	names := eventTypeConstants(t)

	// (a) Label coverage, both directions.
	if len(labels) != len(names) {
		t.Errorf("labels table has %d entries, package declares %d Type constants", len(labels), len(names))
	}
	seen := make(map[string]bool, len(labels))
	for typ, label := range labels {
		if label == "" {
			t.Errorf("type %d has an empty label", typ)
		}
		if seen[label] {
			t.Errorf("label %q used twice", label)
		}
		seen[label] = true
	}

	// (b) Emit-site coverage: scan every non-test .go file in the repo
	// outside this package for "events.<Name>".
	root := filepath.Join("..", "..")
	used := make(map[string]bool, len(names))
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "events" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		src, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, n := range names {
			if !used[n] && strings.Contains(string(src), "events."+n) {
				used[n] = true
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walk repo: %v", err)
	}
	for _, n := range names {
		if !used[n] {
			t.Errorf("event type %s has no emit site outside internal/events", n)
		}
	}
}
