package events

import (
	"reflect"
	"testing"
)

func TestNilJournalIsSafe(t *testing.T) {
	var j *Journal
	j.Emit(SevWarn, HeartbeatDeath, 3, "provider %d dead", 3)
	if j.Enabled() {
		t.Fatal("nil journal reports enabled")
	}
	if got := j.Events(); got != nil {
		t.Fatalf("nil journal returned events: %v", got)
	}
	if j.Node() != "" {
		t.Fatalf("nil journal node = %q", j.Node())
	}
}

func TestEmitAndFilter(t *testing.T) {
	j := NewJournal("n1", 16)
	j.Emit(SevInfo, RepairStart, 2, "sweep of %d blobs", 2)
	j.Emit(SevWarn, HeartbeatDeath, 7, "provider 7 silent")
	j.Emit(SevError, Unrepairable, 1, "1 page lost")

	all := j.Events()
	if len(all) != 3 {
		t.Fatalf("got %d events, want 3", len(all))
	}
	for i, e := range all {
		if e.Seq != uint64(i+1) {
			t.Errorf("event %d has Seq %d", i, e.Seq)
		}
		if e.Node != "n1" {
			t.Errorf("event %d node = %q", i, e.Node)
		}
	}
	if all[0].Msg != "sweep of 2 blobs" || all[0].Val != 2 {
		t.Errorf("formatting lost: %+v", all[0])
	}

	warns := j.EventsSince(0, SevWarn)
	if len(warns) != 2 || warns[0].Type != HeartbeatDeath || warns[1].Type != Unrepairable {
		t.Fatalf("severity filter wrong: %+v", warns)
	}
	tail := j.EventsSince(2, SevInfo)
	if len(tail) != 1 || tail[0].Type != Unrepairable {
		t.Fatalf("since-seq filter wrong: %+v", tail)
	}
}

func TestRingOverwrite(t *testing.T) {
	j := NewJournal("n", 4)
	for i := 0; i < 10; i++ {
		j.Emit(SevInfo, CompactionDone, int64(i), "c%d", i)
	}
	got := j.Events()
	if len(got) != 4 {
		t.Fatalf("ring of 4 holds %d", len(got))
	}
	for i, e := range got {
		if want := uint64(7 + i); e.Seq != want {
			t.Errorf("slot %d Seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestWireRoundTrip(t *testing.T) {
	j := NewJournal("node-2", 8)
	j.Emit(SevWarn, DialFailure, 5, "dial 10.0.0.1:99: %v", "refused")
	j.Emit(SevInfo, MembershipRefresh, 3, "epoch 3")
	want := j.Events()

	latest, got, err := DecodeEvents(EncodeEvents(j.LatestSeq(), want))
	if err != nil {
		t.Fatalf("DecodeEvents: %v", err)
	}
	if latest != 2 {
		t.Errorf("latest seq = %d, want 2", latest)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}

	// Empty set round-trips to empty; latestSeq still travels (how a
	// poller tells a filtered-out tail from a restarted journal).
	latest, got, err = DecodeEvents(EncodeEvents(7, nil))
	if err != nil || len(got) != 0 || latest != 7 {
		t.Fatalf("empty round trip: %d %v %v", latest, got, err)
	}

	// A corrupt count must be rejected before allocation.
	if _, _, err := DecodeEvents([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0x7f}); err == nil {
		t.Fatal("oversized count accepted")
	}
}

func TestQueryWire(t *testing.T) {
	since, sev, err := DecodeEventsQuery(EncodeEventsQuery(42, SevError))
	if err != nil || since != 42 || sev != SevError {
		t.Fatalf("query round trip: %d %v %v", since, sev, err)
	}
	since, sev, err = DecodeEventsQuery(nil)
	if err != nil || since != 0 || sev != SevInfo {
		t.Fatalf("empty query: %d %v %v", since, sev, err)
	}
}

func TestSeverityParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Severity
	}{{"info", SevInfo}, {"WARN", SevWarn}, {"error", SevError}} {
		got, err := ParseSeverity(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseSeverity(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSeverity("loud"); err == nil {
		t.Error("ParseSeverity accepted junk")
	}
}
