// Package events implements the cluster event journal: a structured,
// severity-tagged record of cluster *state transitions* — elections,
// heartbeat deaths, repair sweeps, compactions — as opposed to the
// per-request spans kept by package trace. Every instrumented process
// keeps a fixed-size ring of events (old entries are overwritten, so
// memory is bounded at construction) and serves it over the MEvents
// RPC; the monitor merges rings cluster-wide and blobctl tails them.
//
// The design mirrors trace.Tracer deliberately:
//
//   - A nil *Journal is a valid journal whose every method is a no-op,
//     so emit sites need no nil branches and cost nothing when the
//     journal is disabled.
//   - Emitting is one short critical section copying a value into a
//     preallocated ring slot.
//   - Events are plain values: emitting copies them in, collection
//     copies them out, and rings from different nodes merge by
//     timestamp without coordination (each journal's Seq is only
//     node-local, used for incremental tailing).
//
// The event schema, the full type table and the wire format are
// specified in docs/observability.md.
package events

import (
	"fmt"
	"sync"
	"time"
)

// Severity classifies an event for filtering and health evaluation.
type Severity uint8

const (
	// SevInfo marks routine transitions: sweeps, compactions,
	// membership refreshes, elections completing normally.
	SevInfo Severity = iota
	// SevWarn marks degradation the cluster is expected to absorb:
	// heartbeat deaths, degraded stripes, dial-failure bursts.
	SevWarn
	// SevError marks conditions needing an operator: unrepairable
	// stripes, sidecar corruption falling back to full replay.
	SevError
)

// String returns the severity's fixed-width label.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "INFO"
	case SevWarn:
		return "WARN"
	case SevError:
		return "ERROR"
	default:
		return fmt.Sprintf("SEV(%d)", uint8(s))
	}
}

// ParseSeverity maps a user-facing name (case-sensitive, as printed by
// String or the lowercase flag forms) to a Severity.
func ParseSeverity(s string) (Severity, error) {
	switch s {
	case "info", "INFO":
		return SevInfo, nil
	case "warn", "WARN", "warning":
		return SevWarn, nil
	case "error", "ERROR":
		return SevError, nil
	}
	return 0, fmt.Errorf("events: unknown severity %q", s)
}

// Type identifies what kind of transition an event records. The
// constants below are the complete set; TestEventTypesCovered enforces
// that every one has a label and at least one emit site.
type Type uint16

const (
	// ElectionWon: a vmanager replica won its campaign and now leads
	// its shard. Val is the term.
	ElectionWon Type = 1 + iota
	// ElectionLost: a leader stepped down (higher term seen or a
	// failed campaign). Val is the term stepped down at.
	ElectionLost
	// TermChange: a replica adopted a new leader's term without
	// itself changing role. Val is the new term.
	TermChange
	// LogTruncate: a follower discarded divergent publish-log
	// records to converge with its leader. Val is records dropped.
	LogTruncate
	// SnapshotInstall: a lagging replica replaced its state with a
	// leader snapshot instead of replaying records. Val is the
	// snapshot's last sequence number.
	SnapshotInstall
	// HeartbeatDeath: pmanager declared a provider dead after
	// hbTimeout without a heartbeat. Val is the provider id.
	HeartbeatDeath
	// DeathWatchTrigger: a DeathWatch callback fired, kicking the
	// repair agent out of its timer sleep. Val is the provider id.
	DeathWatchTrigger
	// MembershipRefresh: the provider set changed (registration or
	// re-registration bumped the epoch). Val is the new epoch.
	MembershipRefresh
	// DigestRefresh: pmanager accepted a new bloom digest from a
	// provider's heartbeat. Val is the provider id.
	DigestRefresh
	// RepairStart: a repair sweep began. Val is the blob count in
	// scope.
	RepairStart
	// RepairFinish: a repair sweep completed. Val is the degraded
	// page slots still outstanding after the sweep (0 = the cluster
	// is back to full redundancy) — the monitor's redundancy-debt
	// source.
	RepairFinish
	// PagesReconstructed: erasure reconstruction rebuilt missing
	// shards during a sweep. Val is pages reconstructed.
	PagesReconstructed
	// RedundancyDegraded: a sweep found stripes or replica slots
	// below their redundancy target. Val is the degraded slot count
	// found (before repair restored any).
	RedundancyDegraded
	// Unrepairable: a sweep found pages with too few survivors to
	// reconstruct. Val is the unrepairable page count.
	Unrepairable
	// CompactionDone: the diskstore compactor rewrote a segment.
	// Val is bytes reclaimed.
	CompactionDone
	// SidecarDegrade: a segment's index sidecar was missing, stale
	// or corrupt and recovery fell back to a full replay. Val is the
	// segment bytes replayed.
	SidecarDegrade
	// DialFailure: an rpc client's dials to one address are failing
	// (rate-limited to one event per address per cooldown). Val is
	// the consecutive-failure count.
	DialFailure
	// BreakerOpen: a peer's circuit breaker tripped — recent calls to
	// it failed or crawled, and new calls now fail fast until a probe
	// succeeds (docs/robustness.md). Val is the cumulative trip count
	// for that peer.
	BreakerOpen
	// BreakerClose: a half-open probe succeeded and the peer's
	// breaker re-admitted traffic. Val is the trip count it recovered
	// from.
	BreakerClose

	maxType
)

// labels maps every Type to its stable, dash-separated wire/display
// name. TestEventTypesCovered fails if a constant is missing here.
var labels = map[Type]string{
	ElectionWon:        "election-won",
	ElectionLost:       "election-lost",
	TermChange:         "term-change",
	LogTruncate:        "log-truncate",
	SnapshotInstall:    "snapshot-install",
	HeartbeatDeath:     "heartbeat-death",
	DeathWatchTrigger:  "deathwatch-trigger",
	MembershipRefresh:  "membership-refresh",
	DigestRefresh:      "digest-refresh",
	RepairStart:        "repair-start",
	RepairFinish:       "repair-finish",
	PagesReconstructed: "pages-reconstructed",
	RedundancyDegraded: "redundancy-degraded",
	Unrepairable:       "unrepairable",
	CompactionDone:     "compaction",
	SidecarDegrade:     "sidecar-degrade",
	DialFailure:        "dial-failure",
	BreakerOpen:        "breaker-open",
	BreakerClose:       "breaker-close",
}

// String returns the type's label ("type-N" for unknown values decoded
// from a newer node).
func (t Type) String() string {
	if s, ok := labels[t]; ok {
		return s
	}
	return fmt.Sprintf("type-%d", uint16(t))
}

// Event is one recorded transition. Events are plain values.
type Event struct {
	Seq  uint64   // journal-local, monotonically increasing from 1
	Time int64    // unix nanoseconds
	Sev  Severity //
	Type Type     //
	Node string   // the emitting journal's node name
	Msg  string   // human-readable detail
	Val  int64    // the type's numeric payload (see the constants)
}

// Format renders the event as one log/tail line:
//
//	15:04:05.000 WARN  node-3           heartbeat-death      provider 2 silent for 1.2s
func (e Event) Format() string {
	ts := time.Unix(0, e.Time).Format("15:04:05.000")
	return fmt.Sprintf("%s %-5s %-16s %-20s %s", ts, e.Sev, e.Node, e.Type, e.Msg)
}

// Journal records events for one node (one logical process; in a netsim
// cluster every simulated node has its own). The nil journal and the
// zero ring are both valid and record nothing.
type Journal struct {
	node string

	mu   sync.Mutex
	ring []Event
	next uint64 // total events ever emitted; ring slot = next % len(ring)
}

// DefaultRing is the per-process ring size used when a caller passes 0.
// Events are far rarer than spans, so the ring is smaller than trace's.
const DefaultRing = 1024

// NewJournal creates a journal for the named node with a ring of
// ringSize events (0 selects DefaultRing, negative disables recording).
func NewJournal(node string, ringSize int) *Journal {
	if ringSize == 0 {
		ringSize = DefaultRing
	}
	if ringSize < 0 {
		ringSize = 0
	}
	return &Journal{node: node, ring: make([]Event, ringSize)}
}

// Node returns the journal's node name ("" for a nil journal).
func (j *Journal) Node() string {
	if j == nil {
		return ""
	}
	return j.node
}

// Enabled reports whether the journal records at all.
func (j *Journal) Enabled() bool { return j != nil && len(j.ring) > 0 }

// Emit records an event. The format and args build Msg; val carries the
// type's numeric payload. Safe on a nil journal.
func (j *Journal) Emit(sev Severity, typ Type, val int64, format string, args ...any) {
	if j == nil || len(j.ring) == 0 {
		return
	}
	e := Event{
		Time: time.Now().UnixNano(),
		Sev:  sev,
		Type: typ,
		Node: j.node,
		Msg:  fmt.Sprintf(format, args...),
		Val:  val,
	}
	j.mu.Lock()
	e.Seq = j.next + 1
	j.ring[j.next%uint64(len(j.ring))] = e
	j.next++
	j.mu.Unlock()
}

// LatestSeq returns the newest sequence number ever emitted (0 when
// nothing was, or on a nil journal).
func (j *Journal) LatestSeq() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Events returns a copy of every live event, oldest first.
func (j *Journal) Events() []Event {
	return j.EventsSince(0, SevInfo)
}

// EventsSince returns events with Seq > sinceSeq and severity >= minSev,
// oldest first. This is the incremental-tail query: a follower remembers
// the last Seq it saw per node and asks for what's new.
func (j *Journal) EventsSince(sinceSeq uint64, minSev Severity) []Event {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := uint64(len(j.ring))
	if n == 0 {
		return nil
	}
	count := j.next
	if count > n {
		count = n
	}
	out := make([]Event, 0, count)
	start := j.next - count
	for i := uint64(0); i < count; i++ {
		e := j.ring[(start+i)%n]
		if e.Seq == 0 || e.Seq <= sinceSeq || e.Sev < minSev {
			continue
		}
		out = append(out, e)
	}
	return out
}
