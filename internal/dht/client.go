package dht

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"

	"blob/internal/backoff"
	"blob/internal/rpc"
	"blob/internal/stats"
	"blob/internal/trace"
	"blob/internal/wire"
)

// ErrNotFound is returned by Get when no replica holds the key.
var ErrNotFound = errors.New("dht: key not found")

// ErrNoNodes is returned when the ring is empty.
var ErrNoNodes = errors.New("dht: no storage nodes")

// Client routes key/value operations to the responsible replicas.
// It is safe for concurrent use. The ring view can be refreshed from the
// directory at any time; in-flight operations keep using the view they
// started with (immutable snapshots).
//
// Reads self-heal: when a Get is served by a non-primary replica, the
// value is asynchronously re-put to the replicas ahead of it. Write-once
// semantics make this unconditionally safe, and it restores full
// replication after a node loss or a partially failed MultiPut.
type Client struct {
	pool     *rpc.Pool
	dirAddr  string
	replicas int

	// ReadRepairs counts values healed back onto earlier replicas.
	ReadRepairs stats.Counter

	mu   sync.RWMutex
	ring *Ring

	// refreshMu rate-limits empty-ring directory refetches on the
	// shared backoff curve: consecutive empty refreshes space out
	// exponentially, and a successful (non-empty) one resets the curve.
	refreshMu      sync.Mutex
	nextRefresh    time.Time
	refreshAttempt int
}

// refreshBackoff paces empty-ring directory refetches: quick retries
// while the cluster is still booting, easing off toward one per second
// if no storage node ever registers.
var refreshBackoff = backoff.Policy{Base: 125 * time.Millisecond, Max: time.Second}

// ringOrRefresh returns the current ring, refetching the directory
// membership first (rate-limited) when the snapshot is empty. A
// long-lived embedded client — a vmanager's repair store, a repair
// agent — may boot before any storage node has registered; without
// this its boot-time empty snapshot would return ErrNoNodes forever,
// while short-lived clients (one blobctl run) never notice the gap.
func (c *Client) ringOrRefresh(ctx context.Context) *Ring {
	ring := c.Ring()
	if ring.Size() > 0 || c.dirAddr == "" {
		return ring
	}
	c.refreshMu.Lock()
	due := time.Now().After(c.nextRefresh)
	if due {
		c.nextRefresh = time.Now().Add(refreshBackoff.Delay(c.refreshAttempt))
		c.refreshAttempt++
	}
	c.refreshMu.Unlock()
	if due {
		if err := c.Refresh(ctx); err != nil {
			return ring
		}
		if r := c.Ring(); r.Size() > 0 {
			c.refreshMu.Lock()
			c.refreshAttempt = 0
			c.refreshMu.Unlock()
			return r
		}
	}
	return c.Ring()
}

// NewClient creates a client with an explicit ring (tests, static
// deployments). replicas is clamped to at least 1.
func NewClient(pool *rpc.Pool, ring *Ring, replicas int) *Client {
	if replicas < 1 {
		replicas = 1
	}
	return &Client{pool: pool, ring: ring, replicas: replicas}
}

// NewDirectoryClient creates a client that fetches its ring from the
// directory service at dirAddr.
func NewDirectoryClient(ctx context.Context, pool *rpc.Pool, dirAddr string, replicas int) (*Client, error) {
	ring, _, err := FetchRing(ctx, pool, dirAddr)
	if err != nil {
		return nil, err
	}
	c := NewClient(pool, ring, replicas)
	c.dirAddr = dirAddr
	return c, nil
}

// Refresh refetches the membership from the directory, if one is known.
func (c *Client) Refresh(ctx context.Context) error {
	if c.dirAddr == "" {
		return nil
	}
	ring, _, err := FetchRing(ctx, c.pool, c.dirAddr)
	if err != nil {
		return err
	}
	c.mu.Lock()
	c.ring = ring
	c.mu.Unlock()
	return nil
}

// Ring returns the current ring snapshot.
func (c *Client) Ring() *Ring {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.ring
}

// Replicas returns the configured replication factor.
func (c *Client) Replicas() int { return c.replicas }

// Put stores value under key on all replicas. It succeeds if at least one
// replica acknowledged; replica failures beyond that are tolerated
// because values are write-once and repairable by re-put.
func (c *Client) Put(ctx context.Context, key uint64, value []byte) error {
	reps := c.ringOrRefresh(ctx).ReplicasFor(key, c.replicas)
	if len(reps) == 0 {
		return ErrNoNodes
	}
	w := wire.NewWriter(len(value) + 16)
	w.Uint64(key)
	w.BytesField(value)
	body := w.Bytes()

	tc := trace.FromContext(ctx)
	pend := make([]*rpc.Pending, len(reps))
	for i, rep := range reps {
		pend[i] = c.pool.GoT(rep.Addr, MPut, body, tc)
	}
	var firstErr error
	acked := 0
	for _, p := range pend {
		if _, err := p.Wait(ctx); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		acked++
	}
	if acked == 0 {
		return fmt.Errorf("dht: put failed on all %d replicas: %w", len(reps), firstErr)
	}
	return nil
}

// Get fetches the value for key, trying replicas in preference order.
func (c *Client) Get(ctx context.Context, key uint64) ([]byte, error) {
	reps := c.ringOrRefresh(ctx).ReplicasFor(key, c.replicas)
	if len(reps) == 0 {
		return nil, ErrNoNodes
	}
	w := wire.NewWriter(8)
	w.Uint64(key)
	body := w.Bytes()
	var lastErr error = ErrNotFound
	for tier, rep := range reps {
		resp, err := c.pool.Call(ctx, rep.Addr, MGet, body)
		if err != nil {
			lastErr = err
			continue
		}
		r := wire.NewReader(resp)
		if r.Bool() {
			v := r.BytesCopy()
			if err := r.Err(); err != nil {
				return nil, err
			}
			if tier > 0 {
				c.readRepair(key, v, reps[:tier])
			}
			return v, nil
		}
	}
	if lastErr == ErrNotFound {
		return nil, ErrNotFound
	}
	return nil, fmt.Errorf("dht: get %#x: %w", key, lastErr)
}

// Delete removes key from all replicas (best effort).
func (c *Client) Delete(ctx context.Context, key uint64) error {
	reps := c.ringOrRefresh(ctx).ReplicasFor(key, c.replicas)
	if len(reps) == 0 {
		return ErrNoNodes
	}
	w := wire.NewWriter(8)
	w.Uint64(key)
	body := w.Bytes()
	var firstErr error
	for _, rep := range reps {
		if _, err := c.pool.Call(ctx, rep.Addr, MDelete, body); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// readRepair re-puts a value onto the replicas that missed it,
// asynchronously and best-effort.
func (c *Client) readRepair(key uint64, value []byte, missed []NodeInfo) {
	w := wire.NewWriter(len(value) + 16)
	w.Uint64(key)
	w.BytesField(value)
	body := w.Bytes()
	for _, rep := range missed {
		c.pool.Go(rep.Addr, MPut, body)
	}
	c.ReadRepairs.Inc()
}

// KV is one key/value pair for batched puts.
type KV struct {
	Key   uint64
	Value []byte
}

// MultiPut stores a batch of entries, grouping them per replica node so
// each node receives one aggregated request — the metadata write path of
// the paper, where a whole subtree is dispatched in a handful of frames.
func (c *Client) MultiPut(ctx context.Context, kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	ring := c.ringOrRefresh(ctx)
	if ring.Size() == 0 {
		return ErrNoNodes
	}
	type group struct {
		w *wire.Writer
		n int
	}
	groups := make(map[string]*group)
	for _, kv := range kvs {
		for _, rep := range ring.ReplicasFor(kv.Key, c.replicas) {
			g := groups[rep.Addr]
			if g == nil {
				g = &group{w: wire.NewWriter(1 << 12)}
				g.w.Uvarint(0) // placeholder replaced below by re-encoding
				groups[rep.Addr] = g
			}
			g.w.Uint64(kv.Key)
			g.w.BytesField(kv.Value)
			g.n++
		}
	}
	// Re-encode with the real counts (cheap: header only).
	tc := trace.FromContext(ctx)
	pend := make([]*rpc.Pending, 0, len(groups))
	for addr, g := range groups {
		hdr := wire.NewWriter(8)
		hdr.Uvarint(uint64(g.n))
		// Body payload begins after the placeholder varint (1 byte: 0).
		payload := g.w.Bytes()[1:]
		full := make([]byte, 0, len(payload)+hdr.Len())
		full = append(full, hdr.Bytes()...)
		full = append(full, payload...)
		pend = append(pend, c.pool.GoT(addr, MMultiPut, full, tc))
	}
	var firstErr error
	acked := 0
	for _, p := range pend {
		if _, err := p.Wait(ctx); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		acked++
	}
	if acked == 0 && firstErr != nil {
		return fmt.Errorf("dht: multiput failed everywhere: %w", firstErr)
	}
	if firstErr != nil && acked < len(groups) {
		// Partial failure: with replicas >= 2 the surviving copies serve
		// reads; with replicas == 1 some keys may be lost, so report.
		if c.replicas == 1 {
			return fmt.Errorf("dht: multiput partial failure: %w", firstErr)
		}
	}
	return nil
}

// MultiPutVec is the scatter-gather MultiPut: the same per-replica
// aggregation, but each node's request body is assembled as vectored
// segments whose value payloads alias the callers' buffers — no group
// encode buffer, no contiguous re-copy. The values must stay immutable
// until MultiPutVec returns. Used by the metadata write path
// (mstore.StoreNodes) on the zero-copy client configuration.
func (c *Client) MultiPutVec(ctx context.Context, kvs []KV) error {
	if len(kvs) == 0 {
		return nil
	}
	ring := c.ringOrRefresh(ctx)
	if ring.Size() == 0 {
		return ErrNoNodes
	}
	type group struct {
		vw       wire.VecWriter
		countSeg int
		n        int
	}
	groups := make(map[string]*group)
	var reps []NodeInfo
	for _, kv := range kvs {
		reps = ring.ReplicasForAppend(kv.Key, c.replicas, reps)
		for _, rep := range reps {
			g := groups[rep.Addr]
			if g == nil {
				g = &group{vw: wire.NewVec(16*len(kvs), 2+2*len(kvs))}
				g.countSeg = g.vw.ReserveSeg() // batch count, known at dispatch
				groups[rep.Addr] = g
			}
			g.vw.Uint64(kv.Key)
			g.vw.Uvarint(uint64(len(kv.Value)))
			g.vw.Alias(kv.Value)
			g.n++
		}
	}
	tc := trace.FromContext(ctx)
	pend := make([]*rpc.Pending, 0, len(groups))
	for addr, g := range groups {
		g.vw.SetSeg(g.countSeg, binary.AppendUvarint(make([]byte, 0, 10), uint64(g.n)))
		pend = append(pend, c.pool.GoVecT(addr, MMultiPut, g.vw.Segs(), tc))
	}
	var firstErr error
	acked := 0
	for _, p := range pend {
		if _, err := p.Wait(ctx); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		p.Release()
		acked++
	}
	if acked == 0 && firstErr != nil {
		return fmt.Errorf("dht: multiput failed everywhere: %w", firstErr)
	}
	if firstErr != nil && acked < len(groups) && c.replicas == 1 {
		// Partial failure: with replicas >= 2 the surviving copies serve
		// reads; with replicas == 1 some keys may be lost, so report.
		return fmt.Errorf("dht: multiput partial failure: %w", firstErr)
	}
	return nil
}

// MultiGet fetches a batch of keys, one aggregated request per node
// (primary replicas), with per-key fallback to other replicas for keys
// the primary missed. The result maps key to value; absent keys are
// simply missing from the map.
func (c *Client) MultiGet(ctx context.Context, keys []uint64) (map[uint64][]byte, error) {
	out := make(map[uint64][]byte, len(keys))
	if len(keys) == 0 {
		return out, nil
	}
	ring := c.ringOrRefresh(ctx)
	if ring.Size() == 0 {
		return nil, ErrNoNodes
	}

	remaining := keys
	var reps []NodeInfo
	// Try replica tiers in order: tier 0 = primary, tier 1 = secondary...
	for tier := 0; tier < c.replicas && len(remaining) > 0; tier++ {
		groups := make(map[string][]uint64)
		for _, k := range remaining {
			reps = ring.ReplicasForAppend(k, c.replicas, reps)
			if tier >= len(reps) {
				continue
			}
			addr := reps[tier].Addr
			groups[addr] = append(groups[addr], k)
		}
		if len(groups) == 0 {
			break
		}
		type result struct {
			keys []uint64
			resp []byte
			err  error
		}
		results := make(chan result, len(groups))
		for addr, ks := range groups {
			go func(addr string, ks []uint64) {
				w := wire.NewWriter(8 * len(ks))
				w.Uint64Slice(ks)
				resp, err := c.pool.Call(ctx, addr, MMultiGet, w.Bytes())
				results <- result{keys: ks, resp: resp, err: err}
			}(addr, ks)
		}
		var miss []uint64
		var lastErr error
		for i := 0; i < len(groups); i++ {
			res := <-results
			if res.err != nil {
				lastErr = res.err
				miss = append(miss, res.keys...)
				continue
			}
			r := wire.NewReader(res.resp)
			n := int(r.Uvarint())
			if n != len(res.keys) {
				return nil, fmt.Errorf("dht: multiget response count %d != %d", n, len(res.keys))
			}
			for _, k := range res.keys {
				if r.Bool() {
					out[k] = r.BytesCopy()
				} else {
					miss = append(miss, k)
				}
			}
			if err := r.Err(); err != nil {
				return nil, err
			}
		}
		_ = lastErr
		remaining = miss
	}
	return out, nil
}

// Stats fetches storage statistics from every node in the ring.
func (c *Client) Stats(ctx context.Context) (map[string]StoreStats, error) {
	ring := c.ringOrRefresh(ctx)
	out := make(map[string]StoreStats, ring.Size())
	for _, n := range ring.Nodes() {
		resp, err := c.pool.Call(ctx, n.Addr, MStats, nil)
		if err != nil {
			return nil, fmt.Errorf("dht: stats from %s: %w", n.Addr, err)
		}
		st, err := DecodeStoreStats(resp)
		if err != nil {
			return nil, err
		}
		out[n.Addr] = st
	}
	return out, nil
}
