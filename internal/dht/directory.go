package dht

import (
	"context"
	"fmt"
	"sync"

	"blob/internal/rpc"
	"blob/internal/wire"
)

// RPC method identifiers for the directory service (0x02xx block).
const (
	MDirRegister = 0x0201
	MDirMembers  = 0x0202
)

func init() {
	rpc.RegisterMethodName(MDirRegister, "dht.MDirRegister")
	rpc.RegisterMethodName(MDirMembers, "dht.MDirMembers")
}

// Directory is the membership registry metadata providers join and
// clients consult to build their ring view. Each membership change bumps
// an epoch so clients can cheaply detect staleness.
//
// In the paper this role is played by the DHT's own overlay maintenance;
// a one-hop DHT externalizes it into this small service, which the
// cluster harness co-locates with the provider manager node.
type Directory struct {
	mu      sync.Mutex
	epoch   uint64
	nextID  uint64
	members []NodeInfo
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{nextID: 1}
}

// Register adds a node and returns its assigned ID and the new epoch.
// Registering an address twice returns the existing ID (idempotent
// restarts).
func (d *Directory) Register(addr string) (id, epoch uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, m := range d.members {
		if m.Addr == addr {
			return m.ID, d.epoch
		}
	}
	id = d.nextID
	d.nextID++
	d.members = append(d.members, NodeInfo{ID: id, Addr: addr})
	d.epoch++
	return id, d.epoch
}

// Members returns the current epoch and membership snapshot.
func (d *Directory) Members() (uint64, []NodeInfo) {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]NodeInfo, len(d.members))
	copy(out, d.members)
	return d.epoch, out
}

// RegisterHandlers wires the directory RPCs onto srv.
func (d *Directory) RegisterHandlers(srv *rpc.Server) {
	srv.Handle(MDirRegister, d.handleRegister)
	srv.Handle(MDirMembers, d.handleMembers)
}

func (d *Directory) handleRegister(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	addr := r.String()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("dir register: %w", err)
	}
	id, epoch := d.Register(addr)
	w := wire.NewWriter(16)
	w.Uint64(id)
	w.Uint64(epoch)
	return w.Bytes(), nil
}

func (d *Directory) handleMembers(_ context.Context, _ []byte) ([]byte, error) {
	epoch, members := d.Members()
	w := wire.NewWriter(32 * len(members))
	w.Uint64(epoch)
	w.Uvarint(uint64(len(members)))
	for _, m := range members {
		w.Uint64(m.ID)
		w.String(m.Addr)
	}
	return w.Bytes(), nil
}

// DecodeMembers parses an MDirMembers response.
func DecodeMembers(body []byte) (epoch uint64, members []NodeInfo, err error) {
	r := wire.NewReader(body)
	epoch = r.Uint64()
	n := int(r.Uvarint())
	members = make([]NodeInfo, 0, n)
	for i := 0; i < n; i++ {
		members = append(members, NodeInfo{ID: r.Uint64(), Addr: r.String()})
	}
	return epoch, members, r.Err()
}

// RegisterWith announces a store node at addr to the directory reachable
// through pool at dirAddr, returning the assigned node ID.
func RegisterWith(ctx context.Context, pool *rpc.Pool, dirAddr, addr string) (uint64, error) {
	w := wire.NewWriter(len(addr) + 4)
	w.String(addr)
	resp, err := pool.Call(ctx, dirAddr, MDirRegister, w.Bytes())
	if err != nil {
		return 0, fmt.Errorf("dht: register with directory: %w", err)
	}
	r := wire.NewReader(resp)
	id := r.Uint64()
	return id, r.Err()
}

// FetchRing retrieves the membership from the directory and builds a Ring.
func FetchRing(ctx context.Context, pool *rpc.Pool, dirAddr string) (*Ring, uint64, error) {
	resp, err := pool.Call(ctx, dirAddr, MDirMembers, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("dht: fetch members: %w", err)
	}
	epoch, members, err := DecodeMembers(resp)
	if err != nil {
		return nil, 0, err
	}
	return NewRing(members), epoch, nil
}
