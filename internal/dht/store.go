package dht

import (
	"context"
	"fmt"
	"sync"
	"time"

	"blob/internal/rpc"
	"blob/internal/stats"
	"blob/internal/wire"
)

// RPC method identifiers for the store service (0x01xx block).
const (
	MPut      = 0x0101
	MGet      = 0x0102
	MDelete   = 0x0103
	MMultiPut = 0x0104
	MMultiGet = 0x0105
	MStats    = 0x0106
)

func init() {
	rpc.RegisterMethodName(MPut, "dht.MPut")
	rpc.RegisterMethodName(MGet, "dht.MGet")
	rpc.RegisterMethodName(MDelete, "dht.MDelete")
	rpc.RegisterMethodName(MMultiPut, "dht.MMultiPut")
	rpc.RegisterMethodName(MMultiGet, "dht.MMultiGet")
	rpc.RegisterMethodName(MStats, "dht.MStats")
}

// storeShards is the number of lock shards in a Store. A power of two so
// shard selection is a mask.
const storeShards = 64

// Store is one metadata provider's in-RAM key/value storage. Keys are
// 64-bit hashes, values are opaque byte strings. Entries are write-once:
// the first Put wins and later Puts for the same key are acknowledged
// without effect. This is exactly what the immutable, deterministically
// keyed segment-tree nodes need, and it makes retries idempotent.
type Store struct {
	shards [storeShards]storeShard

	// PutDelay models the per-entry cost of the storage backend's put
	// path, applied while serving MPut/MMultiPut. The paper's metadata
	// substrate (BambooDHT) had a put path far more expensive than its
	// get path (replication and disk-backed storage); this knob lets the
	// simulated cluster reproduce that asymmetry, which is what makes
	// metadata writes speed up with more providers (Figure 3b) while
	// reads stay provider-count-neutral (Figure 3a).
	PutDelay time.Duration

	// Puts counts accepted first writes; DupPuts counts idempotent
	// repeats; Gets/Misses count lookups. The experiment harness reads
	// these to show cache effects.
	Puts    stats.Counter
	DupPuts stats.Counter
	Gets    stats.Counter
	Misses  stats.Counter
	Bytes   stats.Gauge
}

type storeShard struct {
	mu sync.RWMutex
	m  map[uint64][]byte
}

// NewStore returns an empty store.
func NewStore() *Store {
	s := &Store{}
	for i := range s.shards {
		s.shards[i].m = make(map[uint64][]byte)
	}
	return s
}

func (s *Store) shard(key uint64) *storeShard {
	return &s.shards[key&(storeShards-1)]
}

// Put stores value under key if absent. It reports whether the value was
// newly stored (false means an entry already existed and was kept).
func (s *Store) Put(key uint64, value []byte) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	_, exists := sh.m[key]
	if !exists {
		v := make([]byte, len(value))
		copy(v, value)
		sh.m[key] = v
	}
	sh.mu.Unlock()
	if exists {
		s.DupPuts.Inc()
		return false
	}
	s.Puts.Inc()
	s.Bytes.Add(int64(len(value)))
	return true
}

// Get returns the value for key.
func (s *Store) Get(key uint64) ([]byte, bool) {
	sh := s.shard(key)
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	s.Gets.Inc()
	if !ok {
		s.Misses.Inc()
	}
	return v, ok
}

// Delete removes key, reporting whether it existed. Used by the garbage
// collector once a key is provably unreachable.
func (s *Store) Delete(key uint64) bool {
	sh := s.shard(key)
	sh.mu.Lock()
	v, ok := sh.m[key]
	if ok {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
	if ok {
		s.Bytes.Add(-int64(len(v)))
	}
	return ok
}

// Len returns the number of stored entries.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.RLock()
		n += len(s.shards[i].m)
		s.shards[i].mu.RUnlock()
	}
	return n
}

// StoreStats is the snapshot served by the MStats RPC.
type StoreStats struct {
	Entries uint64
	Bytes   uint64
	Puts    uint64
	DupPuts uint64
	Gets    uint64
	Misses  uint64
}

// RegisterHandlers wires the store's RPC methods onto srv.
func (s *Store) RegisterHandlers(srv *rpc.Server) {
	srv.Handle(MPut, s.handlePut)
	srv.Handle(MGet, s.handleGet)
	srv.Handle(MDelete, s.handleDelete)
	srv.Handle(MMultiPut, s.handleMultiPut)
	srv.Handle(MMultiGet, s.handleMultiGet)
	srv.Handle(MStats, s.handleStats)
}

func (s *Store) handlePut(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	key := r.Uint64()
	val := r.BytesField()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("dht put: %w", err)
	}
	if s.PutDelay > 0 {
		time.Sleep(s.PutDelay)
	}
	fresh := s.Put(key, val)
	w := wire.NewWriter(1)
	w.Bool(fresh)
	return w.Bytes(), nil
}

func (s *Store) handleGet(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	key := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("dht get: %w", err)
	}
	v, ok := s.Get(key)
	w := wire.NewWriter(len(v) + 4)
	w.Bool(ok)
	if ok {
		w.BytesField(v)
	}
	return w.Bytes(), nil
}

func (s *Store) handleDelete(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	key := r.Uint64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("dht delete: %w", err)
	}
	w := wire.NewWriter(1)
	w.Bool(s.Delete(key))
	return w.Bytes(), nil
}

func (s *Store) handleMultiPut(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	n := int(r.Uvarint())
	if s.PutDelay > 0 {
		// The backend processes the batched entries sequentially.
		time.Sleep(time.Duration(n) * s.PutDelay)
	}
	for i := 0; i < n; i++ {
		key := r.Uint64()
		val := r.BytesField()
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("dht multiput: entry %d: %w", i, err)
		}
		s.Put(key, val)
	}
	return nil, nil
}

func (s *Store) handleMultiGet(_ context.Context, body []byte) ([]byte, error) {
	r := wire.NewReader(body)
	keys := r.Uint64Slice()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("dht multiget: %w", err)
	}
	w := wire.NewWriter(64 * len(keys))
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		v, ok := s.Get(k)
		w.Bool(ok)
		if ok {
			w.BytesField(v)
		}
	}
	return w.Bytes(), nil
}

func (s *Store) handleStats(_ context.Context, _ []byte) ([]byte, error) {
	st := StoreStats{
		Entries: uint64(s.Len()),
		Bytes:   uint64(s.Bytes.Value()),
		Puts:    uint64(s.Puts.Value()),
		DupPuts: uint64(s.DupPuts.Value()),
		Gets:    uint64(s.Gets.Value()),
		Misses:  uint64(s.Misses.Value()),
	}
	w := wire.NewWriter(48)
	w.Uint64(st.Entries)
	w.Uint64(st.Bytes)
	w.Uint64(st.Puts)
	w.Uint64(st.DupPuts)
	w.Uint64(st.Gets)
	w.Uint64(st.Misses)
	return w.Bytes(), nil
}

// DecodeStoreStats parses an MStats response.
func DecodeStoreStats(body []byte) (StoreStats, error) {
	r := wire.NewReader(body)
	st := StoreStats{
		Entries: r.Uint64(),
		Bytes:   r.Uint64(),
		Puts:    r.Uint64(),
		DupPuts: r.Uint64(),
		Gets:    r.Uint64(),
		Misses:  r.Uint64(),
	}
	return st, r.Err()
}
