package dht

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"testing/quick"
	"time"

	"blob/internal/netsim"
	"blob/internal/rpc"
	"blob/internal/wire"
)

func TestRingEmptyAndSingle(t *testing.T) {
	empty := NewRing(nil)
	if got := empty.ReplicasFor(42, 3); got != nil {
		t.Errorf("empty ring replicas = %v", got)
	}
	if _, ok := empty.Primary(42); ok {
		t.Error("empty ring should have no primary")
	}
	one := NewRing([]NodeInfo{{ID: 1, Addr: "a:1"}})
	reps := one.ReplicasFor(42, 3)
	if len(reps) != 1 || reps[0].Addr != "a:1" {
		t.Errorf("single-node replicas = %v", reps)
	}
}

func TestRingReplicasDistinct(t *testing.T) {
	nodes := make([]NodeInfo, 8)
	for i := range nodes {
		nodes[i] = NodeInfo{ID: uint64(i + 1), Addr: fmt.Sprintf("n%d:1", i)}
	}
	r := NewRing(nodes)
	f := func(key uint64, kRaw uint8) bool {
		k := int(kRaw%10) + 1
		reps := r.ReplicasFor(key, k)
		want := k
		if want > len(nodes) {
			want = len(nodes)
		}
		if len(reps) != want {
			return false
		}
		seen := map[uint64]bool{}
		for _, rep := range reps {
			if seen[rep.ID] {
				return false
			}
			seen[rep.ID] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRingDeterministic(t *testing.T) {
	nodes := []NodeInfo{{1, "a:1"}, {2, "b:1"}, {3, "c:1"}}
	r1 := NewRing(nodes)
	r2 := NewRing([]NodeInfo{{3, "c:1"}, {1, "a:1"}, {2, "b:1"}}) // shuffled
	for key := uint64(0); key < 1000; key++ {
		a := r1.ReplicasFor(wire.Mix64(key), 2)
		b := r2.ReplicasFor(wire.Mix64(key), 2)
		if len(a) != len(b) {
			t.Fatalf("key %d: lengths differ", key)
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("key %d: placement depends on input order", key)
			}
		}
	}
}

func TestRingBalance(t *testing.T) {
	nodes := make([]NodeInfo, 10)
	for i := range nodes {
		nodes[i] = NodeInfo{ID: uint64(i + 1), Addr: fmt.Sprintf("n%d:1", i)}
	}
	r := NewRing(nodes)
	counts := map[uint64]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		p, _ := r.Primary(wire.HashFields(uint64(i)))
		counts[p.ID]++
	}
	want := keys / len(nodes)
	for id, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %d holds %d keys, want within [%d,%d]", id, c, want/2, want*2)
		}
	}
}

func TestStoreWriteOnce(t *testing.T) {
	s := NewStore()
	if !s.Put(1, []byte("first")) {
		t.Fatal("first put should be fresh")
	}
	if s.Put(1, []byte("second")) {
		t.Fatal("second put should be a no-op")
	}
	v, ok := s.Get(1)
	if !ok || string(v) != "first" {
		t.Errorf("Get = %q, %v; want first", v, ok)
	}
	if s.DupPuts.Value() != 1 {
		t.Errorf("DupPuts = %d, want 1", s.DupPuts.Value())
	}
}

func TestStoreDeleteAndAccounting(t *testing.T) {
	s := NewStore()
	s.Put(1, make([]byte, 100))
	s.Put(2, make([]byte, 50))
	if got := s.Bytes.Value(); got != 150 {
		t.Errorf("Bytes = %d, want 150", got)
	}
	if !s.Delete(1) {
		t.Fatal("delete existing should report true")
	}
	if s.Delete(1) {
		t.Fatal("delete missing should report false")
	}
	if got := s.Bytes.Value(); got != 50 {
		t.Errorf("Bytes after delete = %d, want 50", got)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
}

func TestStorePutDoesNotAliasCaller(t *testing.T) {
	s := NewStore()
	buf := []byte{1, 2, 3}
	s.Put(7, buf)
	buf[0] = 99
	v, _ := s.Get(7)
	if v[0] != 1 {
		t.Error("store aliases caller buffer")
	}
}

// testFabric spins up n store nodes plus a directory over netsim.
func testFabric(t testing.TB, n int, replicas int) (*Client, []*Store, func()) {
	t.Helper()
	fab := netsim.New(netsim.Fast())
	var closers []func()

	dirSrv := rpc.NewServer()
	dir := NewDirectory()
	dir.RegisterHandlers(dirSrv)
	dl, err := fab.Host("dir").Listen("rpc")
	if err != nil {
		t.Fatal(err)
	}
	dirSrv.Start(dl)
	closers = append(closers, dirSrv.Close)

	stores := make([]*Store, n)
	for i := 0; i < n; i++ {
		srv := rpc.NewServer()
		stores[i] = NewStore()
		stores[i].RegisterHandlers(srv)
		host := fab.Host(fmt.Sprintf("meta%d", i))
		l, err := host.Listen("rpc")
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(l)
		closers = append(closers, srv.Close)
	}

	pool := rpc.NewPool(hostDialer{fab.Host("cli")})
	closers = append(closers, pool.Close)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("meta%d:rpc", i)
		if _, err := RegisterWith(context.Background(), pool, "dir:rpc", addr); err != nil {
			t.Fatal(err)
		}
	}
	cli, err := NewDirectoryClient(context.Background(), pool, "dir:rpc", replicas)
	if err != nil {
		t.Fatal(err)
	}
	cleanup := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		fab.Close()
	}
	return cli, stores, cleanup
}

type hostDialer struct{ h *netsim.Host }

func (d hostDialer) Dial(addr string) (net.Conn, error) { return d.h.Dial(addr) }

func TestClientPutGetRoundTrip(t *testing.T) {
	cli, _, cleanup := testFabric(t, 4, 1)
	defer cleanup()
	ctx := context.Background()
	for i := uint64(0); i < 100; i++ {
		key := wire.HashFields(i)
		if err := cli.Put(ctx, key, []byte(fmt.Sprintf("value-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 100; i++ {
		key := wire.HashFields(i)
		v, err := cli.Get(ctx, key)
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if want := fmt.Sprintf("value-%d", i); string(v) != want {
			t.Errorf("get %d = %q, want %q", i, v, want)
		}
	}
}

func TestClientGetMissing(t *testing.T) {
	cli, _, cleanup := testFabric(t, 3, 2)
	defer cleanup()
	if _, err := cli.Get(context.Background(), 12345); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestClientMultiPutMultiGet(t *testing.T) {
	cli, stores, cleanup := testFabric(t, 5, 1)
	defer cleanup()
	ctx := context.Background()
	var kvs []KV
	var keys []uint64
	for i := uint64(0); i < 500; i++ {
		k := wire.HashFields(1000 + i)
		kvs = append(kvs, KV{Key: k, Value: []byte{byte(i), byte(i >> 8)}})
		keys = append(keys, k)
	}
	if err := cli.MultiPut(ctx, kvs); err != nil {
		t.Fatal(err)
	}
	got, err := cli.MultiGet(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("MultiGet returned %d of %d keys", len(got), len(keys))
	}
	for i, k := range keys {
		v := got[k]
		if len(v) != 2 || v[0] != byte(i) {
			t.Errorf("key %d wrong value %v", i, v)
		}
	}
	// Entries should be spread over all nodes.
	for i, s := range stores {
		if s.Len() == 0 {
			t.Errorf("store %d received no entries: imbalanced dispersal", i)
		}
	}
}

func TestClientMultiGetPartialMiss(t *testing.T) {
	cli, _, cleanup := testFabric(t, 3, 1)
	defer cleanup()
	ctx := context.Background()
	if err := cli.Put(ctx, 111, []byte("here")); err != nil {
		t.Fatal(err)
	}
	got, err := cli.MultiGet(ctx, []uint64{111, 222})
	if err != nil {
		t.Fatal(err)
	}
	if string(got[111]) != "here" {
		t.Errorf("present key = %q", got[111])
	}
	if _, ok := got[222]; ok {
		t.Error("missing key should be absent from result")
	}
}

func TestReplicationSurvivesNodeLoss(t *testing.T) {
	cli, stores, cleanup := testFabric(t, 4, 2)
	defer cleanup()
	ctx := context.Background()
	keys := make([]uint64, 200)
	for i := range keys {
		keys[i] = wire.HashFields(uint64(7000 + i))
		if err := cli.Put(ctx, keys[i], []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate loss of node 0 by wiping its store: replicas must cover.
	for sh := range stores[0].shards {
		stores[0].shards[sh].mu.Lock()
		stores[0].shards[sh].m = make(map[uint64][]byte)
		stores[0].shards[sh].mu.Unlock()
	}
	for i, k := range keys {
		v, err := cli.Get(ctx, k)
		if err != nil {
			t.Fatalf("key %d unreadable after replica loss: %v", i, err)
		}
		if v[0] != byte(i) {
			t.Errorf("key %d value corrupted", i)
		}
	}
}

func TestReadRepairHealsPrimary(t *testing.T) {
	cli, stores, cleanup := testFabric(t, 3, 2)
	defer cleanup()
	ctx := context.Background()
	key := wire.HashFields(4242)
	if err := cli.Put(ctx, key, []byte("precious")); err != nil {
		t.Fatal(err)
	}
	// Find and wipe the primary replica's copy.
	prim, _ := cli.Ring().Primary(key)
	primStore := stores[prim.ID-1] // directory assigns IDs 1..n in registration order
	if !primStore.Delete(key) {
		t.Fatal("test bug: primary did not hold the key")
	}
	// Get succeeds from the secondary and triggers repair.
	v, err := cli.Get(ctx, key)
	if err != nil || string(v) != "precious" {
		t.Fatalf("get after primary loss: %q, %v", v, err)
	}
	if cli.ReadRepairs.Value() != 1 {
		t.Errorf("ReadRepairs = %d, want 1", cli.ReadRepairs.Value())
	}
	// The repair is async; poll briefly for the primary to heal.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, ok := primStore.Get(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("primary not healed by read repair")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestMultiGetFallbackTier(t *testing.T) {
	cli, stores, cleanup := testFabric(t, 4, 2)
	defer cleanup()
	ctx := context.Background()
	keys := make([]uint64, 100)
	var kvs []KV
	for i := range keys {
		keys[i] = wire.HashFields(uint64(9000 + i))
		kvs = append(kvs, KV{Key: keys[i], Value: []byte{byte(i)}})
	}
	if err := cli.MultiPut(ctx, kvs); err != nil {
		t.Fatal(err)
	}
	for sh := range stores[1].shards {
		stores[1].shards[sh].mu.Lock()
		stores[1].shards[sh].m = make(map[uint64][]byte)
		stores[1].shards[sh].mu.Unlock()
	}
	got, err := cli.MultiGet(ctx, keys)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Errorf("MultiGet after node wipe returned %d/%d", len(got), len(keys))
	}
}

func TestDirectoryIdempotentRegister(t *testing.T) {
	d := NewDirectory()
	id1, _ := d.Register("x:1")
	id2, _ := d.Register("x:1")
	if id1 != id2 {
		t.Errorf("re-register changed ID: %d vs %d", id1, id2)
	}
	id3, epoch := d.Register("y:1")
	if id3 == id1 {
		t.Error("distinct nodes share an ID")
	}
	if epoch != 2 {
		t.Errorf("epoch = %d, want 2", epoch)
	}
	_, members := d.Members()
	if len(members) != 2 {
		t.Errorf("members = %d, want 2", len(members))
	}
}

func TestClientRefresh(t *testing.T) {
	cli, _, cleanup := testFabric(t, 2, 1)
	defer cleanup()
	before := cli.Ring().Size()
	if err := cli.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if cli.Ring().Size() != before {
		t.Errorf("ring size changed on no-op refresh")
	}
}

func TestStoreStatsRPC(t *testing.T) {
	cli, _, cleanup := testFabric(t, 2, 1)
	defer cleanup()
	ctx := context.Background()
	cli.Put(ctx, 5, []byte("abc"))
	sts, err := cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var totalPuts, totalBytes uint64
	for _, st := range sts {
		totalPuts += st.Puts
		totalBytes += st.Bytes
	}
	if totalPuts != 1 || totalBytes != 3 {
		t.Errorf("aggregate stats: puts=%d bytes=%d, want 1/3", totalPuts, totalBytes)
	}
}

func BenchmarkMultiPut512(b *testing.B) {
	cli, _, cleanup := testFabric(b, 8, 1)
	defer cleanup()
	ctx := context.Background()
	val := make([]byte, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kvs := make([]KV, 512)
		for j := range kvs {
			kvs[j] = KV{Key: wire.HashFields(uint64(i), uint64(j)), Value: val}
		}
		if err := cli.MultiPut(ctx, kvs); err != nil {
			b.Fatal(err)
		}
	}
}
