// Package dht implements the distributed hash table the metadata
// providers form. The paper delegates metadata storage to BambooDHT; we
// substitute a one-hop design: every client caches the full membership
// view (obtained from a small directory service) and routes each key
// directly to its replicas via consistent hashing. For a cluster-scale
// deployment this matches how the paper's clients behave after lookup
// caching — the measured costs are per-node storage and network, not
// multi-hop routing — while keeping the same uniform dispersal of
// metadata tree nodes across providers.
//
// Values are write-once: the first Put for a key wins and later Puts are
// acknowledged without overwriting. The segment-tree metadata is
// immutable and deterministically keyed, so first-wins semantics make
// replication retries and the version manager's writer-failure repair
// path safe by construction (see internal/vmanager).
package dht

import (
	"sort"

	"blob/internal/wire"
)

// NodeInfo identifies one DHT storage node.
type NodeInfo struct {
	// ID is the node's unique identity, assigned at registration.
	ID uint64
	// Addr is the node's RPC address.
	Addr string
}

// VNodesPerNode is the number of virtual points each physical node
// occupies on the hash ring. More points smooth out load imbalance.
const VNodesPerNode = 64

// Ring is an immutable consistent-hashing view over a membership set.
// Build a new Ring when membership changes; lookups are lock-free.
type Ring struct {
	nodes  []NodeInfo
	points []ringPoint // sorted by position
}

type ringPoint struct {
	pos  uint64
	node int // index into nodes
}

// NewRing constructs a ring over the given members. The node order does
// not matter; placement depends only on node IDs.
func NewRing(nodes []NodeInfo) *Ring {
	r := &Ring{nodes: append([]NodeInfo(nil), nodes...)}
	r.points = make([]ringPoint, 0, len(nodes)*VNodesPerNode)
	for i, n := range r.nodes {
		for v := 0; v < VNodesPerNode; v++ {
			r.points = append(r.points, ringPoint{
				pos:  wire.HashFields(n.ID, uint64(v)),
				node: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Size returns the number of physical nodes.
func (r *Ring) Size() int { return len(r.nodes) }

// Nodes returns the membership the ring was built from.
func (r *Ring) Nodes() []NodeInfo { return r.nodes }

// ReplicasFor returns up to k distinct nodes responsible for key, in
// preference order (primary first). If fewer than k nodes exist, all
// nodes are returned.
func (r *Ring) ReplicasFor(key uint64, k int) []NodeInfo {
	return r.ReplicasForAppend(key, k, nil)
}

// ReplicasForAppend is ReplicasFor writing into dst[:0] — batched
// callers (MultiPut, MultiGet) resolve replicas for every key of a
// batch, and a fresh slice plus dedup map per key was a measurable
// slice of the metadata write path (docs/perf.md). Replication factors
// are tiny, so duplicates are weeded with a linear scan of the result.
func (r *Ring) ReplicasForAppend(key uint64, k int, dst []NodeInfo) []NodeInfo {
	if len(r.nodes) == 0 || k <= 0 {
		return nil
	}
	if k > len(r.nodes) {
		k = len(r.nodes)
	}
	// First point clockwise from the key's position.
	i := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].pos >= key
	})
	out := dst[:0]
next:
	for n := 0; n < len(r.points) && len(out) < k; n++ {
		p := r.points[(i+n)%len(r.points)]
		cand := r.nodes[p.node]
		for _, have := range out {
			if have.Addr == cand.Addr {
				continue next
			}
		}
		out = append(out, cand)
	}
	return out
}

// Primary returns the single node responsible for key.
func (r *Ring) Primary(key uint64) (NodeInfo, bool) {
	reps := r.ReplicasFor(key, 1)
	if len(reps) == 0 {
		return NodeInfo{}, false
	}
	return reps[0], true
}
