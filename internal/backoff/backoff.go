// Package backoff is the repository's single retry policy: jittered
// exponential delays plus per-operation retry budgets. Every layer
// that retries — the rpc connection pool, the version-manager group
// client chasing a moving leader, the dht directory refresh — shares
// this package, so retry behaviour is tuned (and reasoned about) in
// one place.
//
// Two pieces compose:
//
//   - Policy computes how long to wait before attempt n: full-jitter
//     exponential backoff (delay drawn uniformly from [Base/2, d] where
//     d doubles each attempt up to Max), the scheme that best breaks
//     retry synchronization between many clients hammering one
//     recovering node.
//   - Budget bounds how much retrying a component may do overall: a
//     token bucket that earns a fraction of a token per successful
//     call and spends one per retry. When the budget is empty, retries
//     are denied and the original error surfaces immediately — a
//     cluster-wide failure then costs each client one attempt, not an
//     amplifying retry storm (the gray-failure literature's "retry
//     amplification" problem; see docs/robustness.md).
//
// The zero Policy and nil Budget are usable: Policy zero values fall
// back to the package defaults, and a nil *Budget always allows.
package backoff

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Package defaults, used for any zero Policy field.
const (
	DefaultBase   = 2 * time.Millisecond
	DefaultMax    = 250 * time.Millisecond
	DefaultFactor = 2.0
)

// Policy describes a jittered exponential backoff curve. The zero
// value uses the package defaults. Policies are immutable values —
// copy them freely.
type Policy struct {
	Base   time.Duration // first-retry ceiling (default 2ms)
	Max    time.Duration // delay ceiling (default 250ms)
	Factor float64       // ceiling growth per attempt (default 2)
}

// ceiling returns the un-jittered delay ceiling for attempt n (0-based).
func (p Policy) ceiling(attempt int) time.Duration {
	base, max, factor := p.Base, p.Max, p.Factor
	if base <= 0 {
		base = DefaultBase
	}
	if max <= 0 {
		max = DefaultMax
	}
	if factor <= 1 {
		factor = DefaultFactor
	}
	d := float64(base)
	for i := 0; i < attempt; i++ {
		d *= factor
		if d >= float64(max) {
			return max
		}
	}
	if d > float64(max) {
		d = float64(max)
	}
	return time.Duration(d)
}

// Delay returns the randomized wait before retry attempt n (0-based):
// a uniform draw from [ceiling/2, ceiling] ("equal jitter"), so delays
// grow predictably but two clients that failed together do not retry
// together.
func (p Policy) Delay(attempt int) time.Duration {
	c := p.ceiling(attempt)
	half := c / 2
	if half <= 0 {
		return c
	}
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// Sleep blocks for Delay(attempt) or until ctx is done, returning
// ctx.Err() in the latter case. The common retry-loop shape:
//
//	for attempt := 0; ; attempt++ {
//		if err := op(); err == nil { return nil }
//		if err := policy.Sleep(ctx, attempt); err != nil { return err }
//	}
func (p Policy) Sleep(ctx context.Context, attempt int) error {
	t := time.NewTimer(p.Delay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Budget is a retry token bucket shared by all operations of one
// component. Successful calls earn Rate tokens (capped at Burst);
// each retry spends one. With Rate = 0.1 a component may retry at
// most ~10% of its calls in steady state — enough to ride out
// isolated blips, too little to amplify a systemic outage.
//
// A nil *Budget always allows retries (opt-in semantics). Budget is
// safe for concurrent use.
type Budget struct {
	Rate  float64 // tokens earned per success (default 0.1)
	Burst float64 // bucket capacity (default 10)

	mu     sync.Mutex
	tokens float64
	primed bool
}

// NewBudget returns a budget that starts full.
func NewBudget(rate, burst float64) *Budget {
	if rate <= 0 {
		rate = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &Budget{Rate: rate, Burst: burst, tokens: burst, primed: true}
}

// prime lazily fills a zero-constructed budget so the zero value is
// usable (starts full with default rate/burst).
func (b *Budget) prime() {
	if b.primed {
		return
	}
	if b.Rate <= 0 {
		b.Rate = 0.1
	}
	if b.Burst <= 0 {
		b.Burst = 10
	}
	b.tokens = b.Burst
	b.primed = true
}

// Success credits one successful call's earnings to the bucket.
func (b *Budget) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.prime()
	b.tokens += b.Rate
	if b.tokens > b.Burst {
		b.tokens = b.Burst
	}
	b.mu.Unlock()
}

// Allow reports whether a retry may be spent, and spends it. A denied
// retry costs nothing.
func (b *Budget) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.prime()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Remaining returns the current token count (for tests and gauges).
func (b *Budget) Remaining() float64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.prime()
	return b.tokens
}
