package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 2 * time.Millisecond, Max: 100 * time.Millisecond, Factor: 2}
	for attempt, wantCeil := range []time.Duration{
		2 * time.Millisecond, 4 * time.Millisecond, 8 * time.Millisecond,
	} {
		for i := 0; i < 64; i++ {
			d := p.Delay(attempt)
			if d < wantCeil/2 || d > wantCeil {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d, wantCeil/2, wantCeil)
			}
		}
	}
	// Far past the doubling range the ceiling pins at Max.
	for i := 0; i < 64; i++ {
		if d := p.Delay(50); d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("capped delay %v outside [50ms, 100ms]", d)
		}
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if d := p.Delay(0); d <= 0 || d > DefaultBase {
		t.Fatalf("zero policy first delay %v outside (0, %v]", d, DefaultBase)
	}
	if c := p.ceiling(100); c != DefaultMax {
		t.Fatalf("zero policy ceiling = %v, want %v", c, DefaultMax)
	}
}

func TestDelayJitters(t *testing.T) {
	p := Policy{Base: 10 * time.Millisecond, Max: time.Second}
	seen := make(map[time.Duration]bool)
	for i := 0; i < 128; i++ {
		seen[p.Delay(3)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("128 draws produced %d distinct delays; jitter missing", len(seen))
	}
}

func TestSleepHonorsContext(t *testing.T) {
	p := Policy{Base: time.Hour, Max: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := p.Sleep(ctx, 0); err != context.Canceled {
		t.Fatalf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
}

func TestBudgetDeniesWhenDrained(t *testing.T) {
	b := NewBudget(0.5, 2)
	if !b.Allow() || !b.Allow() {
		t.Fatal("full budget denied a retry")
	}
	if b.Allow() {
		t.Fatal("drained budget allowed a retry")
	}
	// Two successes earn one token back.
	b.Success()
	b.Success()
	if !b.Allow() {
		t.Fatal("replenished budget denied a retry")
	}
	if b.Allow() {
		t.Fatal("budget allowed more retries than earned")
	}
}

func TestBudgetZeroValueAndNil(t *testing.T) {
	var b Budget // zero value starts full with defaults
	if !b.Allow() {
		t.Fatal("zero-value budget denied its first retry")
	}
	var nb *Budget
	if !nb.Allow() {
		t.Fatal("nil budget must always allow")
	}
	nb.Success() // must not panic
}

func TestBudgetCapsAtBurst(t *testing.T) {
	b := NewBudget(1, 3)
	for i := 0; i < 100; i++ {
		b.Success()
	}
	if got := b.Remaining(); got != 3 {
		t.Fatalf("Remaining = %v, want burst cap 3", got)
	}
}
