package blob_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"blob"
)

// Example demonstrates the paper's primitives through the public facade:
// allocate a blob, write two versions, and read both snapshots back.
func Example() {
	cl, err := blob.Launch(blob.ClusterConfig{DataProviders: 2, MetaProviders: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	const page = 4 << 10
	b, err := client.CreateBlob(ctx, page, 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	v1, err := b.Write(ctx, bytes.Repeat([]byte{'a'}, page), 0)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := b.Write(ctx, bytes.Repeat([]byte{'b'}, page), 0)
	if err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, page)
	b.Read(ctx, buf, 0, v1)
	fmt.Printf("v%d: %c\n", v1, buf[0])
	b.Read(ctx, buf, 0, v2)
	fmt.Printf("v%d: %c\n", v2, buf[0])
	// Output:
	// v1: a
	// v2: b
}

// ExampleBlob_Append shows serialized appends: concurrent appenders
// never overlap because the version manager resolves offsets.
func ExampleBlob_Append() {
	cl, err := blob.Launch(blob.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, _ := cl.NewClient(ctx)
	defer client.Close()

	const page = 4 << 10
	b, _ := client.CreateBlob(ctx, page, 1<<20)
	for i := 0; i < 3; i++ {
		_, off, err := b.Append(ctx, make([]byte, page))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("append %d landed at page %d\n", i, off/page)
	}
	// Output:
	// append 0 landed at page 0
	// append 1 landed at page 1
	// append 2 landed at page 2
}

// ExampleNewCollector garbage-collects versions below a horizon.
func ExampleNewCollector() {
	cl, err := blob.Launch(blob.ClusterConfig{CacheNodes: 0})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, _ := cl.NewClient(ctx)
	defer client.Close()

	const page = 4 << 10
	b, _ := client.CreateBlob(ctx, page, 1<<20)
	b.Write(ctx, make([]byte, page), 0) // v1
	b.Write(ctx, make([]byte, page), 0) // v2 supersedes v1 fully

	rep, err := blob.NewCollector(client).Collect(ctx, b.ID(), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d version(s), freed %d page replica(s)\n",
		rep.VersionsCollected, rep.PagesDeleted)
	// Output:
	// collected 1 version(s), freed 1 page replica(s)
}
