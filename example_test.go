package blob_test

import (
	"bytes"
	"context"
	"fmt"
	"log"

	"blob"
)

// Example demonstrates the paper's primitives through the public facade:
// allocate a blob, write two versions, and read both snapshots back.
func Example() {
	cl, err := blob.Launch(blob.ClusterConfig{DataProviders: 2, MetaProviders: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	const page = 4 << 10
	b, err := client.CreateBlob(ctx, page, 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	v1, err := b.Write(ctx, bytes.Repeat([]byte{'a'}, page), 0)
	if err != nil {
		log.Fatal(err)
	}
	v2, err := b.Write(ctx, bytes.Repeat([]byte{'b'}, page), 0)
	if err != nil {
		log.Fatal(err)
	}

	buf := make([]byte, page)
	b.Read(ctx, buf, 0, v1)
	fmt.Printf("v%d: %c\n", v1, buf[0])
	b.Read(ctx, buf, 0, v2)
	fmt.Printf("v%d: %c\n", v2, buf[0])
	// Output:
	// v1: a
	// v2: b
}

// ExampleBlob_Append shows serialized appends: concurrent appenders
// never overlap because the version manager resolves offsets.
func ExampleBlob_Append() {
	cl, err := blob.Launch(blob.ClusterConfig{})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, _ := cl.NewClient(ctx)
	defer client.Close()

	const page = 4 << 10
	b, _ := client.CreateBlob(ctx, page, 1<<20)
	for i := 0; i < 3; i++ {
		_, off, err := b.Append(ctx, make([]byte, page))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("append %d landed at page %d\n", i, off/page)
	}
	// Output:
	// append 0 landed at page 0
	// append 1 landed at page 1
	// append 2 landed at page 2
}

// ExampleRepairer is the durability story end to end: a replicated
// write survives a provider crash, the read still succeeds from the
// surviving replicas (re-pushing what it can on the way), and one
// repair pass restores full redundancy provider-to-provider — the
// protocol specified in docs/replication.md.
func ExampleRepairer() {
	cl, err := blob.Launch(blob.ClusterConfig{
		DataProviders: 3, MetaProviders: 3, DataReplicas: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	const page = 4 << 10
	b, _ := client.CreateBlob(ctx, page, 1<<20)
	data := bytes.Repeat([]byte{'r'}, 4*page)
	v, err := b.Write(ctx, data, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote 4 pages x 2 replicas: %d stored\n", cl.TotalDataPages())

	// Crash one provider: a RAM provider relaunches empty, so every
	// replica it held is gone.
	if err := cl.RestartDataProvider(0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after crash: redundancy degraded = %v\n", cl.TotalDataPages() < 8)

	// Reads fail over to the surviving replica of each page.
	buf := make([]byte, len(data))
	if _, err := b.Read(ctx, buf, 0, v); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read after crash ok = %v\n", bytes.Equal(buf, data))

	// One repair pass pulls the missing pages back, provider to provider.
	rep, err := blob.NewRepairer(client).RepairBlob(ctx, b.ID())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fully redundant again = %v\n", rep.FullyRedundant() && cl.TotalDataPages() == 8)
	// Output:
	// wrote 4 pages x 2 replicas: 8 stored
	// after crash: redundancy degraded = true
	// read after crash ok = true
	// fully redundant again = true
}

// ExampleNewCollector garbage-collects versions below a horizon.
func ExampleNewCollector() {
	cl, err := blob.Launch(blob.ClusterConfig{CacheNodes: 0})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, _ := cl.NewClient(ctx)
	defer client.Close()

	const page = 4 << 10
	b, _ := client.CreateBlob(ctx, page, 1<<20)
	b.Write(ctx, make([]byte, page), 0) // v1
	b.Write(ctx, make([]byte, page), 0) // v2 supersedes v1 fully

	rep, err := blob.NewCollector(client).Collect(ctx, b.ID(), 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d version(s), freed %d page replica(s)\n",
		rep.VersionsCollected, rep.PagesDeleted)
	// Output:
	// collected 1 version(s), freed 1 page replica(s)
}
