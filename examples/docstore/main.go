// Docstore: a tiny multi-version document store over one blob — the
// databases use case from the paper's introduction. Documents live at
// fixed byte extents (not page aligned); every save is an unaligned
// read-modify-write producing a new snapshot, so the store offers
// point-in-time reads of any historical state and streaming export of a
// consistent snapshot through the io.ReadSeeker cursor.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"strings"

	"blob"
)

const (
	slotBytes = 1000 // deliberately NOT a page multiple
	numSlots  = 16
)

func main() {
	cl, err := blob.Launch(blob.ClusterConfig{DataProviders: 4, MetaProviders: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	b, err := client.CreateBlob(ctx, 4<<10, 1<<20)
	if err != nil {
		log.Fatal(err)
	}

	save := func(slot int, text string, base blob.Version) blob.Version {
		doc := make([]byte, slotBytes)
		copy(doc, text)
		v, err := b.WriteAt(ctx, doc, uint64(slot)*slotBytes, base)
		if err != nil {
			log.Fatal(err)
		}
		return v
	}
	load := func(slot int, v blob.Version) string {
		doc := make([]byte, slotBytes)
		if err := b.ReadAt(ctx, doc, uint64(slot)*slotBytes, v); err != nil {
			log.Fatal(err)
		}
		return strings.TrimRight(string(doc), "\x00")
	}

	// Three edits to two documents; every save is a snapshot.
	v1 := save(0, "draft: supernovae are exploding stars", 0)
	v2 := save(1, "notes: difference imaging finds transients", v1)
	v3 := save(0, "final: supernovae are stellar explosions used as standard candles", v2)

	fmt.Printf("doc 0 @ v%d: %q\n", v1, load(0, v1))
	fmt.Printf("doc 0 @ v%d: %q  (old revision still readable)\n", v3, load(0, v3))
	fmt.Printf("doc 1 @ v%d: %q\n", v2, load(1, v2))

	// Point-in-time audit: the state of the whole store at v2.
	fmt.Printf("\naudit at v%d:\n", v2)
	for slot := 0; slot < 2; slot++ {
		fmt.Printf("  doc %d: %q\n", slot, load(slot, v2))
	}

	// Consistent streaming export of the latest snapshot.
	latest, _, err := b.Latest(ctx)
	if err != nil {
		log.Fatal(err)
	}
	r, err := b.NewReader(ctx, latest)
	if err != nil {
		log.Fatal(err)
	}
	n, err := io.Copy(io.Discard, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexported snapshot v%d: %d bytes via io.Reader\n", latest, n)
}
