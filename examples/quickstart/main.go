// Quickstart: launch an in-process deployment, allocate a blob, and walk
// through the paper's primitives — WRITE producing versions, READ of any
// published snapshot, zero-fill of never-written ranges, APPEND, and
// garbage collection of old versions.
package main

import (
	"context"
	"fmt"
	"log"

	"blob"
)

// fillPattern returns an n-byte buffer tiled with word (n need not be a
// multiple of the word length; the buffer length is exact).
func fillPattern(word string, n int) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = word[i%len(word)]
	}
	return buf
}

func main() {
	// A small deployment: 4 storage nodes (each hosting one data
	// provider and one metadata provider), a version manager and a
	// provider manager, all in this process over the simulated network.
	cl, err := blob.Launch(blob.ClusterConfig{DataProviders: 4, MetaProviders: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()

	ctx := context.Background()
	client, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// ALLOC: a 64 MB blob of 4 KB pages. Storage is allocate-on-write,
	// so the virtual size costs nothing until pages are written.
	const pageSize = 4 << 10
	b, err := client.CreateBlob(ctx, pageSize, 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated blob %d: %d MB capacity, %d KB pages\n",
		b.ID(), b.CapacityBytes()>>20, b.PageSize()>>10)

	// WRITE: each write yields a new published version.
	hello := fillPattern("hello", 2*pageSize)
	v1, err := b.Write(ctx, hello, 0)
	if err != nil {
		log.Fatal(err)
	}
	world := fillPattern("world", pageSize)
	v2, err := b.Write(ctx, world, pageSize) // overwrite page 1
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote version %d (2 pages), then version %d (patched page 1)\n", v1, v2)

	// READ: old versions stay intact (snapshots share unchanged pages).
	buf := make([]byte, 2*pageSize)
	if _, err := b.Read(ctx, buf, 0, v1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d page 1 starts with %q\n", v1, buf[pageSize:pageSize+5])
	if _, err := b.Read(ctx, buf, 0, v2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d page 1 starts with %q\n", v2, buf[pageSize:pageSize+5])

	// Never-written ranges read as zeros (version 0 is the all-zero
	// string; every snapshot inherits unwritten ranges from it).
	tail := make([]byte, pageSize)
	if _, err := b.Read(ctx, tail, 8*pageSize, v2); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unwritten page reads as zeros: %v\n", tail[0] == 0 && tail[pageSize-1] == 0)

	// APPEND: concurrent appends are serialized by the version manager
	// and never overlap.
	v3, off, err := b.Append(ctx, hello)
	if err != nil {
		log.Fatal(err)
	}
	_, size, _ := b.Latest(ctx)
	fmt.Printf("appended at offset %d -> version %d; blob size now %d bytes\n", off, v3, size)

	// GC: drop everything only reachable from versions below v2.
	rep, err := blob.NewCollector(client).Collect(ctx, b.ID(), v2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("gc kept versions >= %d: removed %d tree nodes, %d page replicas\n",
		rep.Horizon, rep.NodesDeleted, rep.PagesDeleted)

	// v2 and v3 remain readable after collection.
	if _, err := b.Read(ctx, buf, 0, v2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("post-gc read of v2 ok")
}
