// Concurrent: a miniature of the paper's Figure 3(c) experiment,
// runnable in seconds. N reader clients and M writer clients hammer
// disjoint segments of one blob over the simulated Grid'5000 fabric with
// no synchronization; the program prints the average per-client
// bandwidth, demonstrating that concurrency barely degrades it — the
// paper's headline property.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"blob"
	"blob/internal/netsim"
)

const (
	pageSize = 16 << 10
	segPages = 16
	segBytes = segPages * pageSize
	region   = 256 // pages
	iters    = 6
)

func main() {
	cl, err := blob.Launch(blob.ClusterConfig{
		DataProviders: 8,
		MetaProviders: 8,
		CoLocate:      true,
		Net:           netsim.Grid5000(),
		CacheNodes:    -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()

	admin, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer admin.Close()
	b, err := admin.CreateBlob(ctx, pageSize, region*pageSize)
	if err != nil {
		log.Fatal(err)
	}
	// Prefill so readers hit real pages.
	if _, err := b.Write(ctx, make([]byte, region*pageSize), 0); err != nil {
		log.Fatal(err)
	}

	for _, n := range []int{1, 2, 4, 8} {
		readMBps := runClients(ctx, cl, b.ID(), n, false)
		writeMBps := runClients(ctx, cl, b.ID(), n, true)
		fmt.Printf("%2d concurrent clients: read %6.2f MB/s/client, write %6.2f MB/s/client (x%d time scale)\n",
			n, readMBps, writeMBps, netsim.TimeScale)
	}
	fmt.Println("\nper-client bandwidth holds nearly flat as concurrency grows —")
	fmt.Println("reads and writes serialize only at the version manager's tiny RPC.")
}

// runClients starts n clients on their own simulated hosts, each looping
// over disjoint segments, and returns the mean per-client bandwidth.
func runClients(ctx context.Context, cl *blob.Cluster, blobID uint64, n int, write bool) float64 {
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			mode := "r"
			if write {
				mode = "w"
			}
			c, err := cl.NewClientAt(ctx, fmt.Sprintf("ex-%s%d", mode, i))
			if err != nil {
				log.Fatal(err)
			}
			defer c.Close()
			bb, err := c.OpenBlob(ctx, blobID)
			if err != nil {
				log.Fatal(err)
			}
			buf := make([]byte, segBytes)
			slots := uint64(region / segPages)
			for it := 0; it < iters; it++ {
				off := (uint64(it*n+i) % slots) * segBytes
				if write {
					if _, err := bb.Write(ctx, buf, off); err != nil {
						log.Fatal(err)
					}
				} else {
					if _, err := bb.ReadLatest(ctx, buf, off); err != nil {
						log.Fatal(err)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	perClientBytes := float64(iters * segBytes)
	return perClientBytes / elapsed / 1e6 * netsim.TimeScale
}
