// Datamining: the continuous data-mining scenario from the paper's
// introduction. An event stream is APPENDed to a blob by several
// producers while analysts run windowed scans over consistent snapshots:
// each scan reads one published version, so aggregates never observe a
// torn stream, and re-running a scan on an old version reproduces its
// result exactly (auditability for free).
package main

import (
	"context"
	"encoding/binary"
	"fmt"
	"log"
	"sync"

	"blob"
)

const (
	pageSize      = 4 << 10
	recordsPage   = pageSize / recordBytes
	recordBytes   = 16 // (sensorID uint32, pad uint32, value float64)
	producers     = 4
	batchesEach   = 6
	pagesPerBatch = 2
)

// encodeBatch fills a page-multiple buffer with synthetic sensor
// readings from one producer.
func encodeBatch(producer, batch int) []byte {
	buf := make([]byte, pagesPerBatch*pageSize)
	for i := 0; i < pagesPerBatch*recordsPage; i++ {
		off := i * recordBytes
		sensor := uint32(producer*1000 + i%7)
		value := float64(batch*100+i) * 0.5
		binary.LittleEndian.PutUint32(buf[off:], sensor)
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(int64(value*1000)))
	}
	return buf
}

func main() {
	cl, err := blob.Launch(blob.ClusterConfig{DataProviders: 4, MetaProviders: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	b, err := client.CreateBlob(ctx, pageSize, 16<<20)
	if err != nil {
		log.Fatal(err)
	}

	// Producers append concurrently; the version manager assigns each
	// batch a disjoint extent and a total order.
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			pc, err := cl.NewClient(ctx)
			if err != nil {
				log.Fatal(err)
			}
			defer pc.Close()
			pb, err := pc.OpenBlob(ctx, b.ID())
			if err != nil {
				log.Fatal(err)
			}
			for batch := 0; batch < batchesEach; batch++ {
				v, off, err := pb.Append(ctx, encodeBatch(p, batch))
				if err != nil {
					log.Fatal(err)
				}
				_ = v
				_ = off
			}
		}(p)
	}
	wg.Wait()

	latest, size, err := b.Latest(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d producers appended %d batches: %d bytes across %d versions\n",
		producers, producers*batchesEach, size, latest)

	// Analyst 1: full scan of the newest snapshot.
	sum, n := scan(ctx, b, latest)
	fmt.Printf("scan of v%-2d: %7d records, mean value %.2f\n", latest, n, sum/float64(n))

	// Analyst 2: scan the half-way snapshot. The old version's result is
	// stable no matter how much has been appended since.
	half := latest / 2
	sumH, nH := scan(ctx, b, half)
	fmt.Printf("scan of v%-2d: %7d records, mean value %.2f (reproducible audit point)\n",
		half, nH, sumH/float64(nH))
	sumH2, nH2 := scan(ctx, b, half)
	fmt.Printf("re-scan of v%-2d matches: %v\n", half, sumH == sumH2 && nH == nH2)
}

// scan reads version v in page-aligned windows and aggregates values.
func scan(ctx context.Context, b *blob.Blob, v blob.Version) (sum float64, n int) {
	size, err := b.VersionSize(ctx, v)
	if err != nil {
		log.Fatal(err)
	}
	const window = 4 * pageSize
	buf := make([]byte, window)
	for off := uint64(0); off < size; off += window {
		chunk := buf
		if size-off < window {
			chunk = buf[:size-off]
		}
		if _, err := b.Read(ctx, chunk, off, v); err != nil {
			log.Fatal(err)
		}
		for i := 0; i+recordBytes <= len(chunk); i += recordBytes {
			milli := int64(binary.LittleEndian.Uint64(chunk[i+8:]))
			sum += float64(milli) / 1000
			n++
		}
	}
	return sum, n
}
