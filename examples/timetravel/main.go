// Time travel: version-diff analytics over a streaming survey.
//
// A background ingestor appends observation epochs as new blob versions
// (the survey never stops observing) while this program pins an old
// epoch's snapshot — a purely client-side fact, no lease or lock — and
// keeps verifying it rereads byte-identically under the write stream.
// Then it asks the time-travel question the versioned store makes
// cheap: "what changed in the sky between night i and night j?", for
// growing version distances, by difference-imaging both epochs read at
// their pinned versions (docs/workloads.md, scenario 3).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"blob"
	"blob/internal/sky"
)

func main() {
	cl, err := blob.Launch(blob.ClusterConfig{DataProviders: 6, MetaProviders: 6})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// A 6x6-tile sky of 32x32-pixel images, with one supernova peaking
	// at epoch 8 as the injected ground truth.
	geo := sky.Geometry{TilesX: 6, TilesY: 6, TileW: 32, TileH: 32}
	cat := sky.NewCatalog(geo, 404)
	cat.AddTransient(sky.Transient{
		TileX: 4, TileY: 2, X: 16, Y: 16,
		PeakFlux: 50000, PeakEpoch: 8, RiseEpochs: 2, DecayTau: 3,
	})

	b, err := client.CreateBlob(ctx, 2<<10, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	survey, err := sky.NewSurvey(b, cat, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Seed the first epoch, pin its snapshot, then let the ingestor
	// stream the rest in the background while we work.
	if _, err := survey.CaptureEpoch(ctx); err != nil {
		log.Fatal(err)
	}
	pinned, err := survey.PinReader(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pinned epoch 0 at blob version %d; streaming 11 more epochs...\n", pinned.Version())

	const epochs = 12
	ing := sky.StartIngest(ctx, survey, sky.IngestOptions{
		MaxEpochs: epochs - 1,
		Cadence:   5 * time.Millisecond,
		Prerender: 4,
	})
	// While ingestion runs, keep rereading the pinned snapshot — every
	// read re-verifies the tile checksums observed before the stream
	// started (lock-free: no version-manager interaction at all).
	for survey.Epochs() < epochs {
		for ty := 0; ty < geo.TilesY; ty++ {
			for tx := 0; tx < geo.TilesX; tx++ {
				if err := pinned.VerifyAgainstCatalog(ctx, tx, ty); err != nil {
					log.Fatal(err)
				}
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if n, err := ing.Stop(); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("ingested %d epochs; pinned snapshot stayed byte-stable across %d verified reads\n",
			n, pinned.Reads())
	}

	// Time travel: diff the latest epoch against increasingly distant
	// history. Flat cost across distance is the point — an old version
	// is as first-class as the newest one.
	last := survey.Epochs() - 1
	for _, d := range []int{1, 4, 8, last} {
		t0 := time.Now()
		diff, err := survey.DiffEpochs(ctx, last-d, last, 6.0, 4)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("diff(epoch %2d, epoch %2d): %2d candidate(s) in %6.2f ms (v%d vs v%d)\n",
			last-d, last, len(diff.Candidates), float64(time.Since(t0).Microseconds())/1000,
			diff.VersionA, diff.VersionB)
		for _, c := range diff.Candidates {
			fmt.Printf("   tile (%d,%d) at (%2d,%2d) flux %.0f\n", c.TileX, c.TileY, c.X, c.Y, c.Flux)
		}
	}
}
