// Supernovae: the paper's motivating application, end to end.
//
// A synthetic sky survey is stored as one versioned blob: the sky is a
// grid of fixed-size tile images concatenated into a long byte string;
// each observation epoch is captured by several concurrent "telescope"
// writers; analysis difference-images consecutive epochs in parallel,
// extracts light curves across versions, and classifies candidates into
// supernovae vs variable stars — while new epochs keep being written.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"

	"blob"
	"blob/internal/sky"
)

func main() {
	cl, err := blob.Launch(blob.ClusterConfig{DataProviders: 6, MetaProviders: 6})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Shutdown()
	ctx := context.Background()
	client, err := cl.NewClient(ctx)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// An 8x8-tile sky of 64x64-pixel images: each tile is 8 KB, the
	// whole sky view 512 KB. (The paper's real surveys reach TBs; the
	// pipeline is identical.)
	geo := sky.Geometry{TilesX: 8, TilesY: 8, TileW: 64, TileH: 64}
	cat := sky.NewCatalog(geo, 2026)

	// Ground truth injected into the synthetic sky: two supernovae and
	// one periodic variable star (the classic false positive).
	cat.AddTransient(sky.Transient{
		TileX: 2, TileY: 5, X: 20, Y: 40,
		PeakFlux: 45000, PeakEpoch: 4, RiseEpochs: 1, DecayTau: 3,
	})
	cat.AddTransient(sky.Transient{
		TileX: 6, TileY: 1, X: 32, Y: 12,
		PeakFlux: 38000, PeakEpoch: 7, RiseEpochs: 2, DecayTau: 4,
	})
	cat.AddVariable(sky.VariableStar{
		TileX: 4, TileY: 4, X: 30, Y: 30,
		MeanFlux: 25000, Amplitude: 18000, PeriodEpochs: 2.6,
	})

	b, err := client.CreateBlob(ctx, 4<<10, 1<<20)
	if err != nil {
		log.Fatal(err)
	}
	survey, err := sky.NewSurvey(b, cat, 4) // 4 concurrent telescopes
	if err != nil {
		log.Fatal(err)
	}

	// Capture epochs while analysis of earlier epochs runs concurrently
	// — the read/write concurrency the paper's design enables.
	const epochs = 12
	fmt.Printf("capturing %d epochs with 4 telescopes, analyzing concurrently...\n", epochs)

	detCh := make(chan sky.Detection, 64)
	var analysis sync.WaitGroup
	for e := 0; e < epochs; e++ {
		v, err := survey.CaptureEpoch(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  epoch %2d captured -> blob version %d\n", e, v)
		if e == 0 {
			continue
		}
		analysis.Add(1)
		go func(e int) {
			defer analysis.Done()
			dets, err := survey.DetectEpoch(ctx, e, 6, 4)
			if err != nil {
				log.Printf("detect epoch %d: %v", e, err)
				return
			}
			for _, d := range dets {
				detCh <- d
			}
		}(e)
	}
	analysis.Wait()
	close(detCh)

	// Deduplicate candidates by tile (one object per tile here).
	type key struct{ tx, ty int }
	candidates := map[key]sky.Detection{}
	for d := range detCh {
		k := key{d.TileX, d.TileY}
		if prev, ok := candidates[k]; !ok || d.Flux > prev.Flux {
			candidates[k] = d
		}
	}
	fmt.Printf("\n%d variable objects detected; extracting light curves...\n", len(candidates))

	supernovae := 0
	for _, d := range candidates {
		class, lc, err := survey.ClassifyDetection(ctx, d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  tile (%d,%d) pixel (%2d,%2d): %-9s  light curve ", d.TileX, d.TileY, d.X, d.Y, class)
		for _, f := range lc {
			fmt.Printf("%6.0f ", f)
		}
		fmt.Println()
		if class == sky.ClassSupernova {
			supernovae++
		}
	}
	fmt.Printf("\n%d supernova(e) confirmed (2 injected)\n", supernovae)

	// Every epoch remains readable: verify epoch 0 still matches the
	// catalog bit-for-bit despite 11 newer versions.
	im, err := survey.ReadTile(ctx, 2, 5, 0)
	if err != nil {
		log.Fatal(err)
	}
	want := cat.RenderTile(2, 5, 0)
	identical := true
	for i := range want.Pix {
		if im.Pix[i] != want.Pix[i] {
			identical = false
			break
		}
	}
	fmt.Printf("epoch-0 snapshot still bit-identical after %d epochs: %v\n", epochs, identical)
}
