package main

import (
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux

	"blob/internal/monitor"
	"blob/internal/rpc"
	"blob/internal/stats"
)

// startAdmin serves the node's observability plane on addr (see
// docs/observability.md): Prometheus text exposition at /metrics, a
// readiness probe at /healthz (503 with a reason until the node can
// actually serve: page store open, shard leader reachable), the runtime
// profiler under /debug/pprof/ (delegated to the default mux the pprof
// import populates), and — when this node hosts the monitor role — the
// cluster-wide /cluster/* endpoints.
func startAdmin(addr string, reg *stats.Registry, mon *monitor.Monitor, ready func() (bool, string)) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("admin: write metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		ok, detail := ready()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if !ok {
			http.Error(w, detail, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(detail + "\n"))
	})
	if mon != nil {
		mon.RegisterHTTP(mux)
	}
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("admin: %v", err)
		}
	}()
	log.Printf("admin plane on %s (/metrics, /healthz, /debug/pprof)", addr)
}

// registerRPCMetrics exports the process-wide RPC framework counters as
// function-backed series evaluated at scrape time.
func registerRPCMetrics(reg *stats.Registry) {
	reg.CounterFunc("rpc_calls_sent_total", rpc.M.CallsSent.Value)
	reg.CounterFunc("rpc_calls_handled_total", rpc.M.CallsHandled.Value)
	reg.CounterFunc("rpc_frames_sent_total", rpc.M.FramesSent.Value)
	reg.CounterFunc("rpc_messages_coalesced_total", rpc.M.MessagesCoaled.Value)
	reg.CounterFunc("rpc_bytes_sent_total", rpc.M.BytesSent.Value)
	reg.CounterFunc("rpc_bytes_received_total", rpc.M.BytesReceived.Value)
}
