package main

import (
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux

	"blob/internal/rpc"
	"blob/internal/stats"
)

// startAdmin serves the node's observability plane on addr (see
// docs/observability.md): Prometheus text exposition at /metrics, a
// liveness probe at /healthz, and the runtime profiler under
// /debug/pprof/ (delegated to the default mux the pprof import
// populates).
func startAdmin(addr string, reg *stats.Registry) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			log.Printf("admin: write metrics: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/debug/pprof/", http.DefaultServeMux)
	go func() {
		if err := http.ListenAndServe(addr, mux); err != nil {
			log.Printf("admin: %v", err)
		}
	}()
	log.Printf("admin plane on %s (/metrics, /healthz, /debug/pprof)", addr)
}

// registerRPCMetrics exports the process-wide RPC framework counters as
// function-backed series evaluated at scrape time.
func registerRPCMetrics(reg *stats.Registry) {
	reg.CounterFunc("rpc_calls_sent_total", rpc.M.CallsSent.Value)
	reg.CounterFunc("rpc_calls_handled_total", rpc.M.CallsHandled.Value)
	reg.CounterFunc("rpc_frames_sent_total", rpc.M.FramesSent.Value)
	reg.CounterFunc("rpc_messages_coalesced_total", rpc.M.MessagesCoaled.Value)
	reg.CounterFunc("rpc_bytes_sent_total", rpc.M.BytesSent.Value)
	reg.CounterFunc("rpc_bytes_received_total", rpc.M.BytesReceived.Value)
}
