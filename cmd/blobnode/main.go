// Command blobnode runs one node of a real (TCP) deployment of the
// service. The same process can host any combination of roles, so the
// paper's topology — a version manager node, a provider manager node and
// N storage nodes each hosting one data provider and one metadata
// provider — maps onto:
//
//	# managers (provider manager co-hosts the metadata directory)
//	blobnode -listen :4000 -roles pmanager
//	blobnode -listen :4001 -roles vmanager -pm host0:4000
//
//	# optional replica repair agent (docs/replication.md)
//	blobnode -listen :4002 -roles repairer -pm host0:4000 -vm host1:4001
//
//	# or a sharded, replicated version plane (docs/vmanager-group.md):
//	# one process per replica, each shard a -vpeers group. Replica 0 of
//	# shard 0 looks like this; vary -vshard/-vreplica/-listen for the rest.
//	blobnode -listen :4001 -roles vmanager -pm host0:4000 \
//	         -vshards 2 -vshard 0 -vreplica 0 \
//	         -vpeers host1:4001,host2:4001,host3:4001
//	# a crashed replica restarts with the same flags plus -vrejoin
//
//	# each storage node (add -data-dir for a persistent, crash-recoverable
//	# provider; omit it for the paper's RAM-only mode)
//	blobnode -listen :4100 -roles provider,metadata \
//	         -pm host0:4000 -advertise hostN:4100 -capacity 4294967296 \
//	         -data-dir /var/lib/blob/pages -disk-cache 268435456
//
// Clients connect with blob.Options{Network: blob.TCP, VManagerAddr:
// "host1:4001", PManagerAddr: "host0:4000", MetaDirAddr: "host0:4000"}.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"blob/internal/core"
	"blob/internal/dht"
	"blob/internal/diskstore"
	"blob/internal/erasure"
	"blob/internal/events"
	"blob/internal/monitor"
	"blob/internal/mstore"
	"blob/internal/pmanager"
	"blob/internal/provider"
	repairpkg "blob/internal/repair"
	"blob/internal/rpc"
	"blob/internal/stats"
	"blob/internal/trace"
	"blob/internal/vmanager"
)

func main() {
	var (
		listen     = flag.String("listen", ":4000", "address to listen on")
		advertise  = flag.String("advertise", "", "address other nodes reach this node at (default: -listen)")
		roles      = flag.String("roles", "", "comma-separated roles: vmanager,pmanager,provider,metadata")
		pmAddr     = flag.String("pm", "", "provider manager / metadata directory address (for provider, metadata and vmanager roles)")
		capacity   = flag.Int64("capacity", 0, "data provider page capacity in bytes (0 = unlimited)")
		dataDir    = flag.String("data-dir", "", "data provider persistence directory (empty = RAM-only, the paper's mode)")
		segSize    = flag.Int64("segment-size", 0, "segment file size for -data-dir in bytes (0 = 4 MiB default)")
		diskCache  = flag.Int64("disk-cache", 0, "write-through RAM cache in front of -data-dir, in bytes (0 disables)")
		compactEvr = flag.Duration("compact-interval", time.Minute, "segment compaction period for -data-dir (0 disables)")
		compactBps = flag.Int64("compact-rate", 0, "compaction I/O throttle for -data-dir in bytes/sec (0 = unthrottled)")
		syncWrites = flag.Bool("sync-writes", false, "fsync every page append to -data-dir")
		repair     = flag.Duration("repair", 30*time.Second, "version manager dead-writer repair timeout (0 disables)")
		vshards    = flag.Int("vshards", 1, "total version-manager shard count of the deployment (vmanager role)")
		vshard     = flag.Int("vshard", 0, "this node's version-manager shard index (vmanager role with -vpeers)")
		vreplica   = flag.Int("vreplica", 0, "this node's replica index within its shard (vmanager role with -vpeers)")
		vpeers     = flag.String("vpeers", "", "comma-separated replica addresses of this shard, including this node; enables replicated vmanager mode (docs/vmanager-group.md)")
		vrejoin    = flag.Bool("vrejoin", false, "this replica is restarting after a crash: boot as a follower and catch up from the incumbent leader")
		vbeat      = flag.Duration("vheartbeat", 500*time.Millisecond, "shard leader idle append interval (replicated vmanager mode)")
		velection  = flag.Duration("velection", 0, "follower silence before campaigning (0 = 10x -vheartbeat)")
		repairBps  = flag.Int64("repair-rate", 0, "replica repair pull throttle in bytes/sec (0 = unthrottled; provider role)")
		repairEvr  = flag.Duration("repair-interval", time.Minute, "replica repair sweep period (repairer role)")
		vmAddr     = flag.String("vm", "", `version manager address, or a shard group "a,b;c,d" (repairer role)`)
		heartbeat  = flag.Duration("heartbeat", 5*time.Second, "data provider heartbeat interval")
		strategy   = flag.String("strategy", "round-robin", "placement strategy: round-robin|least-loaded|power-of-two")
		redundancy = flag.String("redundancy", "replicate", `advertised redundancy mode: "replicate" or "rs(k,m)" (pmanager role; clients adopt it for new blobs)`)
		checkpoint = flag.String("checkpoint", "", "version manager checkpoint file (loaded on start, saved periodically and on shutdown)")
		ckptEvery  = flag.Duration("checkpoint-interval", time.Minute, "periodic checkpoint interval")
		adminAddr  = flag.String("admin", "", "admin HTTP listen address serving /metrics, /healthz and /debug/pprof (empty disables)")
		traceEvery = flag.Int("trace-sample", 0, "record spans for 1-in-N root operations (0 disables tracing, 1 traces everything)")
		traceRing  = flag.Int("trace-ring", trace.DefaultRing, "span ring buffer capacity (spans kept per process)")
		slowThresh = flag.Duration("slow-threshold", 0, "log the span tree of client operations slower than this (repairer role; 0 disables)")
		eventRing  = flag.Int("event-ring", 0, "cluster event journal ring capacity (0 = default, negative disables)")
		chaosDelay = flag.Duration("chaos-delay", 0, "gray-failure injection: hold every page serve this long (provider role; change live with blobctl chaos)")
		chaosStall = flag.Bool("chaos-stall", false, "gray-failure injection: stall page serves outright until healed via blobctl chaos (provider role)")
		pollEvery  = flag.Duration("poll", time.Second, "cluster poll interval (monitor role)")
		watchVM    = flag.String("watch-vm", "", `version-manager shards the monitor polls: replica addresses comma-separated within a shard, shards separated by ";" (monitor role)`)
		watchEvs   = flag.String("watch-events", "", "comma-separated extra addresses the monitor tails MEvents from, e.g. the repairer node (monitor role)")
	)
	flag.Parse()

	if *roles == "" {
		fmt.Fprintln(os.Stderr, "at least one -roles value is required")
		flag.Usage()
		os.Exit(2)
	}
	adv := *advertise
	if adv == "" {
		adv = *listen
	}

	red, err := erasure.ParseRedundancy(*redundancy)
	if err != nil {
		log.Fatalf("-redundancy: %v", err)
	}

	srv := rpc.NewServer()
	pool := rpc.NewPool(rpc.TCP{})
	defer pool.Close()
	ctx := context.Background()

	// Observability plane (docs/observability.md): a per-process span
	// tracer served over MSpans, and a metrics registry exposed on the
	// -admin HTTP listener.
	var tracer *trace.Tracer
	if *traceEvery > 0 {
		tracer = trace.New(adv, *traceRing, *traceEvery)
		srv.SetTracer(tracer)
		log.Printf("tracing 1-in-%d operations (ring %d spans)", *traceEvery, *traceRing)
	}
	reg := stats.NewRegistry()
	if *adminAddr != "" {
		srv.EnableMetrics(reg)
		registerRPCMetrics(reg)
	}
	// Every process keeps a cluster event journal (docs/observability.md)
	// served over MEvents; role setup below hooks its emit sites in.
	journal := events.NewJournal(adv, *eventRing)
	srv.SetJournal(journal)
	pool.SetJournal(journal)

	var vm *vmanager.Manager
	var vrep *vmanager.Replica
	var pm *pmanager.Manager
	var mon *monitor.Monitor
	var dataSvc *provider.Service
	var dataStore provider.PageStore
	var providerID uint32
	// repairNow wakes a co-hosted repairer role ahead of its sweep timer
	// when the co-hosted pmanager detects a heartbeat death.
	repairNow := make(chan struct{}, 1)
	hasRepairer := false

	for _, role := range strings.Split(*roles, ",") {
		switch strings.TrimSpace(role) {
		case "pmanager":
			strat := pmanager.RoundRobin
			switch *strategy {
			case "least-loaded":
				strat = pmanager.LeastLoaded
			case "power-of-two":
				strat = pmanager.PowerOfTwo
			}
			pm = pmanager.New(pmanager.Config{
				Strategy:         strat,
				HeartbeatTimeout: 4 * *heartbeat,
				Redundancy:       red,
				Journal:          journal,
			})
			pm.RegisterHandlers(srv)
			// The metadata directory co-habits the provider manager node.
			dir := dht.NewDirectory()
			dir.RegisterHandlers(srv)
			log.Printf("role pmanager+directory (strategy %s, redundancy %s)", strat, red)

		case "vmanager":
			cfg := vmanager.Config{}
			if *repair > 0 {
				if *pmAddr == "" {
					log.Fatal("vmanager with repair needs -pm (metadata directory address)")
				}
				kv, err := dht.NewDirectoryClient(ctx, pool, *pmAddr, 1)
				if err != nil {
					log.Fatalf("vmanager: reach metadata directory: %v", err)
				}
				cfg.RepairTimeout = *repair
				cfg.Store = mstore.New(kv, 0)
			}
			if *vpeers != "" {
				// Replicated shard member (docs/vmanager-group.md): the
				// replicated publish log is the durable state, so the
				// file-checkpoint machinery does not apply.
				if *checkpoint != "" {
					log.Fatal("vmanager: -checkpoint is incompatible with -vpeers (the shard log is the durable state)")
				}
				peers := strings.Split(*vpeers, ",")
				for i := range peers {
					peers[i] = strings.TrimSpace(peers[i])
				}
				if *vreplica < 0 || *vreplica >= len(peers) {
					log.Fatalf("vmanager: -vreplica %d out of range for %d peers", *vreplica, len(peers))
				}
				if *vshard < 0 || *vshard >= *vshards {
					log.Fatalf("vmanager: -vshard %d out of range for -vshards %d", *vshard, *vshards)
				}
				vrep = vmanager.NewReplica(vmanager.ReplicaConfig{
					Shard:           *vshard,
					Shards:          *vshards,
					Index:           *vreplica,
					Peers:           peers,
					Pool:            pool,
					Heartbeat:       *vbeat,
					ElectionTimeout: *velection,
					Rejoin:          *vrejoin,
					Journal:         journal,
					Manager:         cfg,
				})
				vrep.RegisterHandlers(srv)
				log.Printf("role vmanager replica (shard %d/%d, replica %d of %d, rejoin %v, repair %v)",
					*vshard, *vshards, *vreplica, len(peers), *vrejoin, *repair)
				break
			}
			if *checkpoint != "" {
				if f, err := os.Open(*checkpoint); err == nil {
					vm, err = vmanager.Restore(f, cfg)
					f.Close()
					if err != nil {
						log.Fatalf("vmanager: restore %s: %v", *checkpoint, err)
					}
					log.Printf("role vmanager restored from %s", *checkpoint)
				} else if !os.IsNotExist(err) {
					log.Fatalf("vmanager: open checkpoint: %v", err)
				}
			}
			if vm == nil {
				vm = vmanager.New(cfg)
			}
			vm.RegisterHandlers(srv)
			log.Printf("role vmanager (repair %v)", *repair)

		case "provider":
			if *pmAddr == "" {
				log.Fatal("provider role needs -pm")
			}
			if *dataDir != "" {
				ds, err := provider.NewDiskStore(diskstore.Options{
					Dir:              *dataDir,
					SegmentSize:      *segSize,
					Sync:             *syncWrites,
					CompactEvery:     *compactEvr,
					CompactRateBytes: *compactBps,
					Journal:          journal,
				}, *capacity)
				if err != nil {
					log.Fatalf("provider: open data dir %s: %v", *dataDir, err)
				}
				snap := ds.Snapshot()
				log.Printf("provider: recovered %d pages (%d live bytes, %d segments; %d sidecars loaded, %d bytes replayed) from %s",
					snap.PageCount, snap.BytesUsed, snap.Segments, snap.SidecarsLoaded, snap.ReplayedBytes, *dataDir)
				dataStore = ds
				if *diskCache > 0 {
					dataStore = provider.NewCachedStore(ds, *diskCache)
				}
			} else {
				dataStore = provider.NewStore(*capacity)
			}
			dataSvc = provider.NewService(dataStore)
			// Peer pulls (MPullPages) dial other providers through the
			// node's shared TCP pool, throttled by -repair-rate.
			dataSvc.EnableRepair(pool, *repairBps)
			dataSvc.RegisterHandlers(srv)
			dataSvc.RegisterMetrics(reg)
			id, err := pmanager.RegisterProvider(ctx, pool, *pmAddr, adv, *capacity)
			if err != nil {
				log.Fatalf("provider: register with %s: %v", *pmAddr, err)
			}
			providerID = id
			log.Printf("role provider (id %d, capacity %d, persistence %q, repair rate %d B/s)",
				id, *capacity, *dataDir, *repairBps)
			if *chaosDelay > 0 || *chaosStall {
				// Boot gray: the acceptance harness and the chaos bench
				// start sick providers this way (docs/robustness.md).
				dataSvc.SetChaos(*chaosDelay, *chaosStall)
				log.Printf("provider: CHAOS armed (delay %v, stall %v)", *chaosDelay, *chaosStall)
			}

		case "repairer":
			// The replica repair agent: periodically walks every blob's
			// metadata, directs degraded providers to pull missing
			// pages from healthy peers (docs/replication.md), and
			// reconstructs missing erasure-coded shards from stripe
			// survivors (docs/erasure.md). Needs both managers: -vm for
			// the blob list and versions, -pm for placement and the
			// metadata directory.
			if *pmAddr == "" || *vmAddr == "" {
				log.Fatal("repairer role needs -pm and -vm")
			}
			hasRepairer = true
			if *repairEvr <= 0 {
				log.Fatal("repairer role needs -repair-interval > 0")
			}
			vmShards, err := vmanager.ParseGroupAddrs(*vmAddr)
			if err != nil {
				log.Fatalf("repairer: -vm: %v", err)
			}
			// The repairer is the deployment's long-lived client, and its
			// journal is what the monitor tails (-watch-events) — so its
			// breakers are the cluster's gray-failure detector: a provider
			// answering its sweeps slowly or not at all trips a per-peer
			// breaker here, and the open/close transitions surface in
			// blobctl events and the monitor rollup (docs/robustness.md).
			client, err := core.NewClient(ctx, core.Options{
				Network:        rpc.TCP{},
				VManagerShards: vmShards,
				PManagerAddr:   *pmAddr,
				MetaDirAddr:    *pmAddr,
				Tracer:         tracer,
				SlowThreshold:  *slowThresh,
				Breakers:       true,
				Journal:        journal,
			})
			if err != nil {
				log.Fatalf("repairer: connect: %v", err)
			}
			agent := repairpkg.New(client)
			agent.Log = log.Printf
			agent.Journal = journal
			interval := *repairEvr
			go func() {
				t := time.NewTicker(interval)
				defer t.Stop()
				for {
					select {
					case <-t.C:
					case <-repairNow:
						// A co-hosted pmanager detected a heartbeat
						// death: repair immediately instead of waiting
						// out the sweep timer.
						log.Printf("repairer: provider death detected, sweeping now")
					}
					sctx, cancel := context.WithTimeout(ctx, interval*4)
					// Re-learn the metadata membership each sweep: the
					// boot-time ring may predate some nodes' registration,
					// and a stale ring hashes tree nodes to the wrong
					// provider.
					if err := client.Meta().Refresh(sctx); err != nil {
						log.Printf("repairer: refresh metadata ring: %v", err)
					}
					blobs, err := client.VersionManager().Blobs(sctx)
					if err != nil {
						log.Printf("repairer: list blobs: %v", err)
						cancel()
						continue
					}
					rep, err := agent.RepairAll(sctx, blobs)
					cancel()
					if err != nil {
						log.Printf("repairer: %v", err)
					}
					if rep.PagesMissing > 0 {
						log.Printf("repairer: %d slots degraded, %d repaired (%d bytes pulled), %d reconstructed (%d bytes), %d unrepairable",
							rep.PagesMissing, rep.PagesRepaired, rep.BytesPulled,
							rep.PagesReconstructed, rep.ReconstructedBytes, rep.Unrepairable)
					}
				}
			}()
			log.Printf("role repairer (interval %v)", interval)

		case "monitor":
			// The cluster health plane's aggregator: polls every node,
			// rolls the cluster up into one snapshot, and serves it over
			// MCluster (blobctl top) and the admin listener's /cluster/*
			// endpoints (docs/observability.md).
			if *pmAddr == "" {
				log.Fatal("monitor role needs -pm")
			}
			var shards [][]string
			if *watchVM != "" {
				var err error
				shards, err = vmanager.ParseGroupAddrs(*watchVM)
				if err != nil {
					log.Fatalf("monitor: -watch-vm: %v", err)
				}
			}
			var extra []string
			if *watchEvs != "" {
				for _, a := range strings.Split(*watchEvs, ",") {
					if a = strings.TrimSpace(a); a != "" {
						extra = append(extra, a)
					}
				}
			}
			mon = monitor.New(monitor.Config{
				Pool:       pool,
				PMAddr:     *pmAddr,
				VMShards:   shards,
				EventNodes: extra,
				Interval:   *pollEvery,
				Logf:       log.Printf,
			})
			mon.RegisterHandlers(srv)
			log.Printf("role monitor (poll %v, %d vm shards, %d extra event nodes)",
				*pollEvery, len(shards), len(extra))

		case "metadata":
			if *pmAddr == "" {
				log.Fatal("metadata role needs -pm (directory address)")
			}
			st := dht.NewStore()
			st.RegisterHandlers(srv)
			id, err := dht.RegisterWith(ctx, pool, *pmAddr, adv)
			if err != nil {
				log.Fatalf("metadata: register with %s: %v", *pmAddr, err)
			}
			log.Printf("role metadata provider (id %d)", id)

		default:
			log.Fatalf("unknown role %q", role)
		}
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("listen %s: %v", *listen, err)
	}
	srv.Start(l)
	var serving atomic.Bool
	serving.Store(true)
	log.Printf("listening on %s (advertised as %s)", *listen, adv)
	if mon != nil {
		mon.Start()
	}
	if *adminAddr != "" {
		// Readiness (not liveness): serving goes false the moment
		// shutdown begins — before the page store closes — and a
		// vmanager replica is only ready while its shard has a leader
		// it can route to. The page store itself opened before the RPC
		// listener, so "serving" also implies "store open".
		ready := func() (bool, string) {
			if !serving.Load() {
				return false, "shutting down"
			}
			if vrep != nil {
				st := vrep.Status()
				if !st.IsLeader && st.Leader < 0 {
					return false, fmt.Sprintf("vmanager shard %d: no reachable leader", st.Shard)
				}
			}
			return true, "ok"
		}
		startAdmin(*adminAddr, reg, mon, ready)
	}

	// Heartbeat loop for the data provider role.
	stop := make(chan struct{})

	// The pmanager always watches for heartbeat deaths: the watch loop
	// is what journals heartbeat-death events for the monitor's tail.
	// When a repairer role co-habits this process, a death additionally
	// triggers an immediate repair pass.
	if pm != nil {
		go pm.DeathWatch(stop, func(id uint32) {
			log.Printf("pmanager: provider %d stopped heartbeating", id)
			if !hasRepairer {
				return
			}
			select {
			case repairNow <- struct{}{}:
			default:
			}
		})
	}
	if dataSvc != nil {
		go func() {
			t := time.NewTicker(*heartbeat)
			defer t.Stop()
			// Bloom-digest piggyback: recompute when the store's
			// counters move, resend bytes only while the manager's held
			// hash disagrees (see docs/observability.md).
			var digHash, held uint64
			var digest []byte
			lastPuts, lastPages := int64(-1), int64(-1)
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					snap := dataSvc.Snapshot()
					if snap.Puts != lastPuts || snap.PageCount != lastPages {
						digHash, digest, _ = dataSvc.DigestBytes()
						lastPuts, lastPages = snap.Puts, snap.PageCount
					}
					var payload []byte
					if digHash != 0 && digHash != held {
						payload = digest
					}
					hctx, cancel := context.WithTimeout(ctx, *heartbeat)
					h, err := pmanager.SendHeartbeatDigest(hctx, pool, *pmAddr, providerID, snap.BytesUsed, snap.ActiveOps, digHash, payload)
					if err != nil {
						log.Printf("heartbeat: %v", err)
					} else {
						held = h
					}
					cancel()
				}
			}
		}()
	}

	// Periodic version manager checkpoints.
	if vm != nil && *checkpoint != "" {
		go func() {
			t := time.NewTicker(*ckptEvery)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					if err := saveCheckpoint(vm, *checkpoint); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("shutting down")
	serving.Store(false)
	close(stop)
	if mon != nil {
		mon.Close()
	}
	// Stop serving before closing the store: a GetPages answered from a
	// closed store would report pages absent rather than failing the
	// connection, and clients cannot tell that apart from data loss.
	srv.Close()
	if cl, ok := dataStore.(io.Closer); ok {
		if err := cl.Close(); err != nil {
			log.Printf("close data store: %v", err)
		}
	}
	if vm != nil {
		if *checkpoint != "" {
			if err := saveCheckpoint(vm, *checkpoint); err != nil {
				log.Printf("final checkpoint: %v", err)
			}
		}
		vm.Close()
	}
	if vrep != nil {
		vrep.Close()
	}
}

// saveCheckpoint writes the manager state atomically (temp file+rename).
func saveCheckpoint(vm *vmanager.Manager, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := vm.Checkpoint(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
