package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"blob/internal/events"
	"blob/internal/monitor"
	"blob/internal/rpc"
)

// runTop implements `blobctl -monitor host:port top`: a live refreshing
// terminal dashboard over the monitor's MCluster snapshot — health
// verdict with reasons, capacity, the provider and shard tables, and a
// scrolling cluster event tail (docs/observability.md).
func runTop(monAddr string, args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	interval := fs.Duration("interval", 2*time.Second, "refresh period")
	once := fs.Bool("once", false, "print one frame and exit (no screen clearing)")
	tail := fs.Int("events", 12, "event-tail lines to show")
	fs.Parse(args)
	if monAddr == "" {
		log.Fatal("top needs -monitor (the monitor node's RPC address)")
	}
	pool := rpc.NewPool(rpc.TCP{})
	defer pool.Close()
	ctx := context.Background()
	for {
		s, err := monitor.FetchCluster(ctx, pool, monAddr, nil)
		if err != nil {
			log.Fatalf("top: %s: %v", monAddr, err)
		}
		if !*once {
			fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
		}
		printSnapshot(s, *tail)
		if *once {
			return
		}
		time.Sleep(*interval)
	}
}

// runEvents implements `blobctl -monitor host:port events`: print the
// monitor's merged cluster event tail, optionally following it like
// `tail -f` with a time cursor so each event prints exactly once.
func runEvents(monAddr string, args []string) {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	follow := fs.Bool("follow", false, "keep polling and print new events as they arrive")
	minSev := fs.String("min-severity", "info", "lowest severity to show: info|warn|error")
	interval := fs.Duration("interval", time.Second, "poll period with -follow")
	asJSON := fs.Bool("json", false, "machine-readable output: one JSON document per event")
	fs.Parse(args)
	if monAddr == "" {
		log.Fatal("events needs -monitor (the monitor node's RPC address)")
	}
	sev, err := events.ParseSeverity(*minSev)
	if err != nil {
		log.Fatalf("events: %v", err)
	}
	pool := rpc.NewPool(rpc.TCP{})
	defer pool.Close()
	ctx := context.Background()
	enc := json.NewEncoder(os.Stdout)
	var since int64
	for {
		s, err := monitor.FetchCluster(ctx, pool, monAddr, monitor.EncodeClusterQuery(since, sev))
		if err != nil {
			log.Fatalf("events: %s: %v", monAddr, err)
		}
		for _, e := range s.Events {
			if *asJSON {
				enc.Encode(e)
			} else {
				fmt.Println(e.Format())
			}
			if e.Time > since {
				since = e.Time
			}
		}
		if !*follow {
			return
		}
		time.Sleep(*interval)
	}
}

// printSnapshot renders one dashboard frame.
func printSnapshot(s monitor.ClusterSnapshot, tail int) {
	at := time.Unix(0, s.Time).Format("15:04:05")
	fmt.Printf("cluster health: %-7s as of %s", health(s.Health), at)
	if s.Redundancy != "" {
		fmt.Printf("   redundancy %s", s.Redundancy)
	}
	fmt.Printf("   epoch %d\n", s.Epoch)
	for _, r := range s.Reasons {
		fmt.Printf("  ! %s\n", r)
	}

	alive := len(s.Providers) - s.DeadProviders
	fmt.Printf("providers %d alive / %d dead   pages %d   used %s", alive, s.DeadProviders, s.TotalPages, sizeOf(s.UsedBytes))
	if s.CapacityBytes > 0 {
		fmt.Printf(" of %s (%.1f%%)", sizeOf(s.CapacityBytes), 100*float64(s.UsedBytes)/float64(s.CapacityBytes))
	}
	fmt.Println()
	fmt.Printf("redundancy debt %d (peak %d)   repair pending %v", s.RedundancyDebt, s.DebtPeak, s.RepairPending)
	if s.LastSweep != 0 {
		fmt.Printf("   last sweep %s", time.Unix(0, s.LastSweep).Format("15:04:05"))
	}
	fmt.Println()
	if s.BreakersOpen > 0 {
		fmt.Printf("breakers open %d:", s.BreakersOpen)
		for _, b := range s.OpenBreakers {
			fmt.Printf("  %s", b)
		}
		fmt.Println()
	}
	if s.ReadP99 > 0 || s.WriteP99 > 0 {
		fmt.Printf("read  p50 %-9v p99 %-9v max %-9v\n",
			time.Duration(s.ReadP50), time.Duration(s.ReadP99), time.Duration(s.ReadMax))
		fmt.Printf("write p50 %-9v p99 %-9v max %-9v\n",
			time.Duration(s.WriteP50), time.Duration(s.WriteP99), time.Duration(s.WriteMax))
	}

	if len(s.Providers) > 0 {
		fmt.Printf("\n%-4s %-22s %-6s %10s %8s %7s %8s %8s\n",
			"id", "addr", "state", "used", "pages", "active", "get/s", "put/s")
		for _, p := range s.Providers {
			state := "alive"
			if !p.Alive {
				state = "dead"
			}
			fmt.Printf("%-4d %-22s %-6s %10s %8d %7d %8.1f %8.1f\n",
				p.ID, p.Addr, state, sizeOf(p.BytesUsed), p.PageCount, p.ActiveOps, p.GetsPerSec, p.PutsPerSec)
		}
	}
	if len(s.Shards) > 0 {
		fmt.Printf("\n%-6s %-8s %6s %11s %9s %7s\n",
			"shard", "leader", "term", "reachable", "loglen", "blobs")
		for _, sh := range s.Shards {
			leader := "none"
			if sh.Leader >= 0 {
				leader = fmt.Sprintf("r%d", sh.Leader)
			}
			fmt.Printf("%-6d %-8s %6d %7d/%-3d %9d %7d\n",
				sh.Shard, leader, sh.Term, sh.Reachable, sh.Replicas, sh.LogLen, sh.Blobs)
		}
	}
	if n := len(s.Events); n > 0 && tail > 0 {
		if n > tail {
			s.Events = s.Events[n-tail:]
		}
		fmt.Println()
		for _, e := range s.Events {
			fmt.Println(e.Format())
		}
	}
}

// health renders the verdict with an ANSI color when stdout looks like
// a terminal frame anyway (top clears the screen, so color is safe).
func health(h string) string {
	switch h {
	case monitor.HealthGreen:
		return "\x1b[32mGREEN\x1b[0m"
	case monitor.HealthYellow:
		return "\x1b[33mYELLOW\x1b[0m"
	case monitor.HealthRed:
		return "\x1b[31mRED\x1b[0m"
	}
	return "UNKNOWN"
}

// sizeOf formats a byte count with a binary unit.
func sizeOf(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}
