// Command blobctl is the operator CLI for a running deployment: it
// exercises the paper's primitives (ALLOC, WRITE, READ) plus append,
// stat and garbage collection against the addresses of the three
// services.
//
// Usage:
//
//	blobctl -vm host1:4001 -pm host0:4000 create -pagesize 65536 -capacity 1099511627776
//	blobctl -vm ... -pm ... write  -blob 1 -offset 0 -in picture.raw
//	blobctl -vm ... -pm ... append -blob 1 -in next-epoch.raw
//	blobctl -vm ... -pm ... read   -blob 1 -offset 0 -length 65536 -version 3 -out tile.raw
//	blobctl -vm ... -pm ... stat   -blob 1
//	blobctl -vm ... -pm ... gc     -blob 1 -keep 5
//	blobctl -vm ... -pm ... repair -blob 1
//	blobctl -vm ... -pm ... stats [-json]
//	blobctl -vm ... -pm ... vmstatus [-json]
//	blobctl -vm ... -pm ... trace 0x1d8f3ab27c64e901
//
//	# against a monitor node (docs/observability.md): live dashboard
//	# and the merged cluster event tail
//	blobctl -monitor host:4500 top [-interval 2s] [-once]
//	blobctl -monitor host:4500 events [-follow] [-min-severity warn]
//
//	# gray-failure injection (docs/robustness.md): make provider 2 hold
//	# every page serve 500ms, then heal it
//	blobctl -vm ... -pm ... chaos -provider 2 -delay 500ms
//	blobctl -vm ... -pm ... chaos -provider 2
//
// Against a sharded, replicated version plane (docs/vmanager-group.md)
// -vm takes the group syntax: semicolon-separated shards,
// comma-separated replicas — `-vm "h1:4001,h2:4001;h3:4001,h4:4001"`.
// The vmstatus command prints every replica's role, term and log
// position.
//
// The trace command queries every node's span ring buffer (the MSpans
// RPC, see docs/observability.md) and reassembles one request's
// cross-process span tree.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"blob"
	"blob/internal/dht"
	"blob/internal/erasure"
	"blob/internal/provider"
	"blob/internal/trace"
	"blob/internal/vmanager"
)

func main() {
	vmAddr := flag.String("vm", "127.0.0.1:4001", `version manager address, or a shard group "a,b;c,d" (shards split by ';', replicas by ',')`)
	pmAddr := flag.String("pm", "127.0.0.1:4000", "provider manager / metadata directory address")
	replicas := flag.Int("replicas", 1, "data replication factor for writes")
	redundancy := flag.String("redundancy", "", `redundancy mode for created blobs: "replicate" or "rs(k,m)" (default: the cluster's advertised mode)`)
	traceOps := flag.Bool("trace", false, "trace this invocation's operations and print their trace ids (inspect with blobctl trace <id>)")
	monAddr := flag.String("monitor", "", "monitor node RPC address (top and events commands)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: blobctl [flags] create|write|append|read|stat|gc|repair|stats|vmstatus|trace|top|events|chaos [subflags]")
		os.Exit(2)
	}
	// The monitor-plane commands speak only to the monitor node — no
	// blob client (and no manager addresses) needed.
	switch flag.Arg(0) {
	case "top":
		runTop(*monAddr, flag.Args()[1:])
		return
	case "events":
		runEvents(*monAddr, flag.Args()[1:])
		return
	}
	red, err := erasure.ParseRedundancy(*redundancy)
	if err != nil {
		log.Fatalf("-redundancy: %v", err)
	}
	vmShards, err := vmanager.ParseGroupAddrs(*vmAddr)
	if err != nil {
		log.Fatalf("-vm: %v", err)
	}

	var tracer *trace.Tracer
	if *traceOps {
		tracer = trace.New("blobctl", trace.DefaultRing, 1)
	}
	ctx := context.Background()
	client, err := blob.NewClient(ctx, blob.Options{
		Network:        blob.TCP,
		VManagerShards: vmShards,
		PManagerAddr:   *pmAddr,
		MetaDirAddr:    *pmAddr,
		DataReplicas:   *replicas,
		Redundancy:     red,
		CacheNodes:     -1,
		Tracer:         tracer,
		// Operator reads get the production failure posture: hedged
		// fetches are on by default and per-peer breakers route around
		// gray peers (docs/robustness.md).
		Breakers: true,
	})
	if err != nil {
		log.Fatalf("connect: %v", err)
	}
	defer client.Close()
	// After a traced invocation, reassemble and print each root
	// operation's full cross-process tree: the local ring supplies the
	// client spans, every node's MSpans buffer the remote ones. The
	// trace id is printed too — server-side spans outlive this process
	// and stay queryable with blobctl trace <id>.
	defer func() {
		if tracer == nil {
			return
		}
		for _, sp := range tracer.Spans() {
			if sp.Parent != 0 {
				continue
			}
			spans := gatherTrace(ctx, client, vmShards, *pmAddr, sp.TraceID, tracer)
			fmt.Fprintf(os.Stderr, "trace %#x (%s): %d spans across %d process(es)\n",
				sp.TraceID, sp.Name, len(spans), trace.Processes(spans))
			fmt.Fprint(os.Stderr, trace.FormatTree(trace.BuildTree(spans)))
		}
	}()

	cmd, args := flag.Arg(0), flag.Args()[1:]
	switch cmd {
	case "create":
		fs := flag.NewFlagSet("create", flag.ExitOnError)
		pageSize := fs.Uint64("pagesize", 64<<10, "page size in bytes (power of two)")
		capacity := fs.Uint64("capacity", 1<<30, "blob capacity in bytes")
		fs.Parse(args)
		b, err := client.CreateBlob(ctx, *pageSize, *capacity)
		if err != nil {
			log.Fatalf("create: %v", err)
		}
		fmt.Printf("blob %d created: pagesize %d, capacity %d, redundancy %s\n",
			b.ID(), b.PageSize(), b.CapacityBytes(), b.Redundancy())

	case "write", "append":
		fs := flag.NewFlagSet(cmd, flag.ExitOnError)
		blobID := fs.Uint64("blob", 0, "blob id")
		offset := fs.Uint64("offset", 0, "byte offset (write only)")
		in := fs.String("in", "", "input file (page-multiple size)")
		fs.Parse(args)
		data, err := os.ReadFile(*in)
		if err != nil {
			log.Fatalf("read %s: %v", *in, err)
		}
		b, err := client.OpenBlob(ctx, *blobID)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		if cmd == "append" {
			v, off, err := b.Append(ctx, data)
			if err != nil {
				log.Fatalf("append: %v", err)
			}
			fmt.Printf("appended %d bytes at offset %d -> version %d\n", len(data), off, v)
		} else {
			v, err := b.Write(ctx, data, *offset)
			if err != nil {
				log.Fatalf("write: %v", err)
			}
			fmt.Printf("wrote %d bytes at offset %d -> version %d\n", len(data), *offset, v)
		}

	case "read":
		fs := flag.NewFlagSet("read", flag.ExitOnError)
		blobID := fs.Uint64("blob", 0, "blob id")
		offset := fs.Uint64("offset", 0, "byte offset")
		length := fs.Uint64("length", 0, "bytes to read (page multiple)")
		version := fs.Uint64("version", 0, "version to read (0 = latest)")
		out := fs.String("out", "", "output file (default stdout)")
		count := fs.Int("count", 1, "repeat the read this many times (latency smoke; payload written once)")
		fs.Parse(args)
		b, err := client.OpenBlob(ctx, *blobID)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		buf := make([]byte, *length)
		v := blob.Version(*version)
		if v == 0 {
			latest, _, err := b.Latest(ctx)
			if err != nil {
				log.Fatalf("latest: %v", err)
			}
			v = latest
		}
		if *count < 1 {
			*count = 1
		}
		var latest blob.Version
		start := time.Now()
		for i := 0; i < *count; i++ {
			if latest, err = b.Read(ctx, buf, *offset, v); err != nil {
				log.Fatalf("read: %v", err)
			}
		}
		elapsed := time.Since(start)
		if *out == "" {
			os.Stdout.Write(buf)
		} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
			log.Fatalf("write %s: %v", *out, err)
		}
		fmt.Fprintf(os.Stderr, "read %d bytes of version %d (latest published: %d)\n", len(buf), v, latest)
		if *count > 1 {
			fmt.Fprintf(os.Stderr, "reads: %d in %v (mean %v/read)\n",
				*count, elapsed.Round(time.Millisecond), (elapsed / time.Duration(*count)).Round(time.Microsecond))
		}
		// Surface the gray-failure machinery's verdict on this
		// invocation: how often a fetch was hedged to a second replica,
		// how often the hedge won, and which peers the client's
		// breakers currently refuse (docs/robustness.md).
		if hedged := client.HedgedReads.Value(); hedged > 0 {
			fmt.Fprintf(os.Stderr, "hedged fetches: %d (%d won)\n", hedged, client.HedgeWins.Value())
		}
		if open := client.Pool().OpenBreakers(); len(open) > 0 {
			fmt.Fprintf(os.Stderr, "breakers open: %s\n", strings.Join(open, ", "))
		}

	case "stat":
		fs := flag.NewFlagSet("stat", flag.ExitOnError)
		blobID := fs.Uint64("blob", 0, "blob id")
		fs.Parse(args)
		b, err := client.OpenBlob(ctx, *blobID)
		if err != nil {
			log.Fatalf("open: %v", err)
		}
		v, size, err := b.Latest(ctx)
		if err != nil {
			log.Fatalf("latest: %v", err)
		}
		fmt.Printf("blob %d: pagesize %d, capacity %d, redundancy %s, latest version %d, size %d bytes\n",
			b.ID(), b.PageSize(), b.CapacityBytes(), b.Redundancy(), v, size)

	case "gc":
		fs := flag.NewFlagSet("gc", flag.ExitOnError)
		blobID := fs.Uint64("blob", 0, "blob id")
		keep := fs.Uint64("keep", 0, "oldest version to keep readable")
		fs.Parse(args)
		rep, err := blob.NewCollector(client).Collect(ctx, *blobID, *keep)
		if err != nil {
			log.Fatalf("gc: %v", err)
		}
		fmt.Printf("collected %d versions: %d tree nodes and %d page replicas deleted (%d nodes kept)\n",
			rep.VersionsCollected, rep.NodesDeleted, rep.PagesDeleted, rep.NodesKept)

	case "repair":
		fs := flag.NewFlagSet("repair", flag.ExitOnError)
		blobID := fs.Uint64("blob", 0, "blob id (0 = every blob)")
		fs.Parse(args)
		blobs := []uint64{*blobID}
		if *blobID == 0 {
			var err error
			blobs, err = client.VersionManager().Blobs(ctx)
			if err != nil {
				log.Fatalf("list blobs: %v", err)
			}
		}
		agent := blob.NewRepairer(client)
		agent.Log = log.Printf
		rep, err := agent.RepairAll(ctx, blobs)
		if err != nil {
			log.Fatalf("repair: %v", err)
		}
		fmt.Printf("checked %d replica slots over %d blob(s): %d degraded, %d repaired (%d bytes pulled, %d already held), %d reconstructed (%d bytes pushed, %d survivor bytes read), %d settled by digests, %d unrepairable\n",
			rep.PagesChecked, len(blobs), rep.PagesMissing, rep.PagesRepaired,
			rep.BytesPulled, rep.PagesSkipped,
			rep.PagesReconstructed, rep.ReconstructedBytes, rep.SurvivorBytes,
			rep.BloomSkips, rep.Unrepairable)
		if !rep.FullyRedundant() {
			os.Exit(1)
		}

	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "machine-readable output: one JSON document instead of the table")
		fs.Parse(args)
		provs, err := client.AllProviders(ctx)
		if err != nil {
			log.Fatalf("list providers: %v", err)
		}
		if *asJSON {
			type provWithStats struct {
				ID   uint32 `json:"id"`
				Addr string `json:"addr"`
				provider.Stats
			}
			doc := struct {
				Redundancy string          `json:"redundancy"`
				Providers  []provWithStats `json:"providers"`
			}{Redundancy: client.ClusterRedundancy().String()}
			failed := 0
			for _, p := range provs {
				resp, err := client.Pool().Call(ctx, p.Addr, provider.MStats, nil)
				if err != nil {
					fmt.Fprintf(os.Stderr, "error: provider %d (%s) unreachable: %v\n", p.ID, p.Addr, err)
					failed++
					continue
				}
				st, err := provider.DecodeStats(resp)
				if err != nil {
					fmt.Fprintf(os.Stderr, "error: provider %d (%s) returned a bad stats response: %v\n", p.ID, p.Addr, err)
					failed++
					continue
				}
				doc.Providers = append(doc.Providers, provWithStats{ID: p.ID, Addr: p.Addr, Stats: st})
			}
			if failed > 0 {
				log.Fatalf("stats incomplete: %d of %d providers did not answer", failed, len(provs))
			}
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				log.Fatalf("encode: %v", err)
			}
			return
		}
		fmt.Printf("cluster redundancy: %s\n", client.ClusterRedundancy())
		if len(vmShards) > 1 || len(vmShards[0]) > 1 {
			// Sharded version plane: one summary line per shard.
			for s, shard := range vmShards {
				lead, term, loglen := -1, uint64(0), uint64(0)
				for j := range shard {
					if st, err := client.VersionManager().FetchStatus(ctx, s, j); err == nil && st.IsLeader && (lead < 0 || st.Term > term) {
						lead, term, loglen = j, st.Term, st.LogLen
					}
				}
				if lead < 0 {
					fmt.Printf("vmanager shard %d: no leader (%d replicas)\n", s, len(shard))
				} else {
					fmt.Printf("vmanager shard %d: leader %s (replica %d, term %d, %d log records)\n",
						s, shard[lead], lead, term, loglen)
				}
			}
		}
		fmt.Printf("%-4s %-22s %10s %12s %12s %12s %8s %6s %10s %9s %10s %5s %8s %10s %7s\n",
			"id", "addr", "pages", "bytes", "capacity", "disk", "segs", "live%", "cache", "hits", "replayB", "idx",
			"repairP", "pullB", "bskip")
		// A provider that cannot be queried fails the command: printing
		// a zero-value row would read as "provider is empty", which an
		// operator can mistake for data loss.
		failed := 0
		for _, p := range provs {
			resp, err := client.Pool().Call(ctx, p.Addr, provider.MStats, nil)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: provider %d (%s) unreachable: %v\n", p.ID, p.Addr, err)
				failed++
				continue
			}
			st, err := provider.DecodeStats(resp)
			if err != nil {
				fmt.Fprintf(os.Stderr, "error: provider %d (%s) returned a bad stats response: %v\n", p.ID, p.Addr, err)
				failed++
				continue
			}
			fmt.Printf("%-4d %-22s %10d %12d %12d %12d %8d %5.1f%% %10d %9d %10d %5d %8d %10d %7d\n",
				p.ID, p.Addr, st.PageCount, st.BytesUsed, st.Capacity,
				st.DiskBytes, st.Segments, 100*st.LiveRatio(), st.CacheBytes, st.CacheHits,
				st.ReplayedBytes, st.SidecarsLoaded,
				st.RepairedPages, st.RepairBytes, st.BloomSkips)
		}
		if failed > 0 {
			log.Fatalf("stats incomplete: %d of %d providers did not answer", failed, len(provs))
		}

	case "vmstatus":
		// Per-replica view of the version plane: role, term and log
		// position of every shard member. The primary operator check
		// after a node failure — a shard is healthy when exactly one
		// replica leads and the followers' log lengths track it.
		fs := flag.NewFlagSet("vmstatus", flag.ExitOnError)
		asJSON := fs.Bool("json", false, "machine-readable output: one JSON document instead of the table")
		fs.Parse(args)
		type replicaRow struct {
			Shard   int    `json:"shard"`
			Replica int    `json:"replica"`
			Addr    string `json:"addr"`
			Role    string `json:"role"`
			Term    uint64 `json:"term"`
			LogLen  uint64 `json:"logLen"`
			LogBase uint64 `json:"logBase"`
			Blobs   uint64 `json:"blobs"`
			Error   string `json:"error,omitempty"`
		}
		var rows []replicaRow
		down := 0
		for s, shard := range vmShards {
			for j, addr := range shard {
				row := replicaRow{Shard: s, Replica: j, Addr: addr}
				st, err := client.VersionManager().FetchStatus(ctx, s, j)
				if err != nil {
					row.Role, row.Error = "down", err.Error()
					down++
				} else {
					row.Role = "follower"
					if st.IsLeader {
						row.Role = "leader"
					}
					row.Term, row.LogLen, row.LogBase, row.Blobs = st.Term, st.LogLen, st.LogBase, st.Blobs
				}
				rows = append(rows, row)
			}
		}
		if *asJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(struct {
				Shards   int          `json:"shards"`
				Replicas []replicaRow `json:"replicas"`
			}{Shards: len(vmShards), Replicas: rows}); err != nil {
				log.Fatalf("encode: %v", err)
			}
		} else {
			fmt.Printf("version plane: %d shard(s)\n", len(vmShards))
			fmt.Printf("%-6s %-8s %-22s %-9s %6s %9s %9s %7s\n",
				"shard", "replica", "addr", "role", "term", "loglen", "logbase", "blobs")
			for _, r := range rows {
				if r.Error != "" {
					fmt.Printf("%-6d %-8d %-22s %-9s %s\n", r.Shard, r.Replica, r.Addr, r.Role, r.Error)
					continue
				}
				fmt.Printf("%-6d %-8d %-22s %-9s %6d %9d %9d %7d\n",
					r.Shard, r.Replica, r.Addr, r.Role, r.Term, r.LogLen, r.LogBase, r.Blobs)
			}
		}
		if down > 0 {
			os.Exit(1)
		}

	case "chaos":
		// Gray-failure injection (docs/robustness.md): arm or heal a
		// data provider's chaos mode live. The provider keeps running,
		// registered and heartbeating — it just serves pages slowly
		// (-delay), or not at all (-stall), until healed (no flags).
		fs := flag.NewFlagSet("chaos", flag.ExitOnError)
		provID := fs.Uint("provider", 0, "data provider id to target (see blobctl stats)")
		nodeAddr := fs.String("addr", "", "provider address to target (alternative to -provider)")
		delay := fs.Duration("delay", 0, "hold every page serve this long (0 with no -stall heals)")
		stall := fs.Bool("stall", false, "stall page serves outright until healed")
		fs.Parse(args)
		addr := *nodeAddr
		if addr == "" {
			if *provID == 0 {
				log.Fatal("chaos: -provider or -addr is required")
			}
			provs, err := client.AllProviders(ctx)
			if err != nil {
				log.Fatalf("list providers: %v", err)
			}
			for _, p := range provs {
				if p.ID == uint32(*provID) {
					addr = p.Addr
					break
				}
			}
			if addr == "" {
				log.Fatalf("chaos: no provider with id %d", *provID)
			}
		}
		if _, err := client.Pool().Call(ctx, addr, provider.MChaos, provider.EncodeChaos(*delay, *stall)); err != nil {
			log.Fatalf("chaos: %s: %v", addr, err)
		}
		if *delay == 0 && !*stall {
			fmt.Printf("%s healed\n", addr)
		} else {
			fmt.Printf("%s chaos armed: delay %v, stall %v\n", addr, *delay, *stall)
		}

	case "trace":
		// Reassemble one request's cross-process span tree: every node
		// keeps the spans it recorded in a ring buffer served over
		// MSpans; sweep the managers, every data provider and every
		// metadata provider, then stitch by parent span id.
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		fs.Parse(args)
		if fs.NArg() != 1 {
			log.Fatal("usage: blobctl trace <trace-id> (decimal or 0x hex, from a slow-request log or traced client)")
		}
		id, err := strconv.ParseUint(fs.Arg(0), 0, 64)
		if err != nil || id == 0 {
			log.Fatalf("trace: bad trace id %q", fs.Arg(0))
		}
		spans := gatherTrace(ctx, client, vmShards, *pmAddr, id, nil)
		if len(spans) == 0 {
			log.Fatalf("trace %#x: no spans found — was the operation sampled, and do the rings still hold it?", id)
		}
		fmt.Printf("trace %#x: %d spans across %d process(es)\n", id, len(spans), trace.Processes(spans))
		fmt.Print(trace.FormatTree(trace.BuildTree(spans)))

	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
}

// gatherTrace reassembles one trace: it sweeps every node's span ring
// over the MSpans RPC — the managers, every data provider and every
// metadata provider — and merges in the local tracer's spans when the
// invocation itself was traced. Nodes running without a tracer (or
// older builds) are noted and skipped; a partial tree is still useful.
func gatherTrace(ctx context.Context, client *blob.Client, vmShards [][]string, pmAddr string, id uint64, local *trace.Tracer) []trace.Span {
	var spans []trace.Span
	if local != nil {
		spans = append(spans, local.SpansFor(id)...)
	}
	addrSet := map[string]bool{pmAddr: true}
	for _, shard := range vmShards {
		for _, addr := range shard {
			addrSet[addr] = true
		}
	}
	if provs, err := client.AllProviders(ctx); err == nil {
		for _, p := range provs {
			addrSet[p.Addr] = true
		}
	} else {
		fmt.Fprintf(os.Stderr, "note: could not list data providers: %v\n", err)
	}
	if resp, err := client.Pool().Call(ctx, pmAddr, dht.MDirMembers, nil); err == nil {
		if _, members, err := dht.DecodeMembers(resp); err == nil {
			for _, m := range members {
				addrSet[m.Addr] = true
			}
		}
	}
	addrs := make([]string, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	for _, addr := range addrs {
		resp, err := client.Pool().Call(ctx, addr, trace.MSpans, trace.EncodeSpansQuery(id))
		if err != nil {
			fmt.Fprintf(os.Stderr, "note: %s: no spans served: %v\n", addr, err)
			continue
		}
		got, err := trace.DecodeSpans(resp)
		if err != nil {
			log.Fatalf("trace: %s: bad MSpans response: %v", addr, err)
		}
		spans = append(spans, got...)
	}
	return spans
}
