// Command blobbench regenerates the paper's evaluation figures as text
// tables on an in-process simulated cluster (internal/netsim with the
// Grid'5000 parameters, time-dilated by netsim.TimeScale).
//
// Usage:
//
//	blobbench -exp fig3a            # metadata read overhead (Figure 3a)
//	blobbench -exp fig3b            # metadata write overhead (Figure 3b)
//	blobbench -exp fig3c            # concurrent throughput   (Figure 3c)
//	blobbench -exp ablations        # design-choice ablations
//	blobbench -exp hotpath          # zero-copy data path vs legacy codec
//	blobbench -exp vshards          # sharded version plane scaling
//	blobbench -exp ingest           # pinned readers under streaming ingestion
//	blobbench -exp swarm            # Galaxy-Zoo tiny-read swarm
//	blobbench -exp timetravel       # epoch diffs across version distance
//	blobbench -exp workloads        # all three scenarios -> BENCH_8.json
//	blobbench -exp chaos            # gray-failure matrix -> BENCH_10.json
//	blobbench -exp all
//
// -json FILE additionally writes the selected experiment's report as
// JSON where one is defined: hotpath (the BENCH_5.json perf-trajectory
// artifact, docs/perf.md), vshards (BENCH_7.json), each workload
// scenario, and workloads (the combined BENCH_8.json artifact,
// docs/workloads.md).
//
// Reported durations divide by the time scale for comparison with the
// paper; bandwidths multiply. The normalized (paper-comparable) value is
// printed alongside the raw measurement.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"blob/internal/bench"
	"blob/internal/netsim"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig3a|fig3b|fig3c|ablations|hotpath|vshards|ingest|swarm|timetravel|workloads|chaos|all")
	iters := flag.Int("iters", 3, "iterations per measured point")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	jsonPath := flag.String("json", "", "write the hotpath report to this file as JSON")
	flag.Parse()

	sc := bench.DefaultScale()
	sc.Iterations = *iters

	providers := []int{10, 20, 40}
	segments := []uint64{1, 4, 16, 64, 256}
	clients := []int{1, 2, 4, 8, 12, 16, 20}
	if *quick {
		providers = []int{4, 8}
		segments = []uint64{1, 16, 64}
		clients = []int{1, 4, 8}
		sc.BlobPages = 1 << 18
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Printf("\n=== %s ===\n", name)
		if err := fn(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}

	run("fig3a", func() error { return fig3Meta(true, providers, segments, sc) })
	run("fig3b", func() error { return fig3Meta(false, providers, segments, sc) })
	run("fig3c", func() error { return fig3c(clients, sc, *quick) })
	run("ablations", func() error { return ablations(sc, *quick) })
	run("hotpath", func() error { return hotpath(sc, *quick, *jsonPath) })
	vshardsJSON := ""
	if *exp == "vshards" {
		vshardsJSON = *jsonPath
	}
	run("vshards", func() error { return vshards(*quick, vshardsJSON) })
	// The workload scenarios (docs/workloads.md) write their report only
	// when selected directly, like vshards.
	scenarioJSON := func(name string) string {
		if *exp == name {
			return *jsonPath
		}
		return ""
	}
	wp := bench.DefaultWorkloadParams()
	if *quick {
		wp = bench.QuickWorkloadParams()
	}
	run("ingest", func() error { return ingest(wp, scenarioJSON("ingest")) })
	run("swarm", func() error { return swarm(wp, scenarioJSON("swarm")) })
	run("timetravel", func() error { return timetravel(wp, scenarioJSON("timetravel")) })
	run("workloads", func() error { return workloads(wp, scenarioJSON("workloads")) })
	run("chaos", func() error { return chaos(*quick, scenarioJSON("chaos")) })

	known := map[string]bool{
		"all": true, "fig3a": true, "fig3b": true, "fig3c": true, "ablations": true,
		"hotpath": true, "vshards": true, "ingest": true, "swarm": true,
		"timetravel": true, "workloads": true, "chaos": true,
	}
	if !known[*exp] {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// writeJSON writes a report artifact when a path was requested.
func writeJSON(jsonPath string, rep any) error {
	if jsonPath == "" {
		return nil
	}
	j, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(j, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nwrote %s\n", jsonPath)
	return nil
}

// ingest runs the streaming-ingestion scenario: reader p99 against a
// pinned snapshot with continuous epoch ingestion on vs off.
func ingest(wp bench.WorkloadParams, jsonPath string) error {
	rep, err := bench.AblateIngest(wp.IngestReaders, wp.IngestReadsPerReader)
	if err != nil {
		return err
	}
	printIngest(rep)
	return writeJSON(jsonPath, rep)
}

func printIngest(rep bench.IngestReport) {
	fmt.Printf("Pinned snapshot readers under streaming ingestion (%d readers x %d tile reads, %dx%d tiles of %.0f KB)\n",
		rep.Readers, rep.ReadsPerReader, rep.TilesX, rep.TilesY, rep.TileKB)
	fmt.Printf("latencies carry the 1/%d simulation time scale; snapshots byte-stable: %v\n\n",
		netsim.TimeScale, rep.SnapshotStable)
	for _, p := range rep.Points() {
		fmt.Printf("   %-36s %10.2f %s\n", p.Name, p.Value, p.Unit)
	}
}

// swarm runs the Galaxy-Zoo tiny-read scenario.
func swarm(wp bench.WorkloadParams, jsonPath string) error {
	rep, err := bench.AblateSwarm(wp.SwarmReaders, wp.SwarmReadsPerReader)
	if err != nil {
		return err
	}
	printSwarm(rep)
	return writeJSON(jsonPath, rep)
}

func printSwarm(rep bench.SwarmReport) {
	fmt.Printf("Galaxy-Zoo swarm: %d readers x %d random %d-byte cutout reads of one hot version\n",
		rep.Readers, rep.ReadsPerReader, rep.TileBytes)
	fmt.Printf("rates carry the 1/%d simulation time scale (multiply to compare); verified: %v\n\n",
		netsim.TimeScale, rep.Verified)
	for _, p := range rep.Points() {
		fmt.Printf("   %-36s %10.2f %s\n", p.Name, p.Value, p.Unit)
	}
}

// timetravel runs the version-distance diff scenario.
func timetravel(wp bench.WorkloadParams, jsonPath string) error {
	rep, err := bench.AblateTimeTravel(wp.TimeTravelEpochs, wp.TimeTravelDistances, wp.TimeTravelIters, wp.TimeTravelWorkers)
	if err != nil {
		return err
	}
	printTimeTravel(rep)
	return writeJSON(jsonPath, rep)
}

func printTimeTravel(rep bench.TimeTravelReport) {
	fmt.Printf("Time-travel diffs: %d epochs captured, diff(last-d, last) per distance d, %d workers\n",
		rep.Epochs, rep.Workers)
	fmt.Printf("ground truth (injected transients) verified: %v\n\n", rep.GroundTruthVerified)
	for _, p := range rep.Points {
		fmt.Printf("   distance %2d: %8.2f ms/diff  %8.2f MB/s  %3d candidate(s)\n",
			p.Distance, p.DiffMeanMs, p.MBPerS, p.Candidates)
	}
}

// workloads runs all three scenarios and writes the combined
// BENCH_8.json artifact.
func workloads(wp bench.WorkloadParams, jsonPath string) error {
	rep, err := bench.RunWorkloads(wp)
	if err != nil {
		return err
	}
	printIngest(rep.Ingest)
	fmt.Println()
	printSwarm(rep.Swarm)
	fmt.Println()
	printTimeTravel(rep.TimeTravel)
	return writeJSON(jsonPath, rep)
}

// chaos runs the gray-failure matrix (docs/robustness.md) and
// optionally writes the BENCH_10.json artifact with the two robustness
// gates: stalled-replica p99 within 3x healthy (hedging + breakers
// on), no-fault hedge overhead under 5% extra provider requests.
func chaos(quick bool, jsonPath string) error {
	reads := 120
	if quick {
		reads = 40
	}
	rep, err := bench.AblateChaos(reads)
	if err != nil {
		return err
	}
	fmt.Printf("Gray-failure matrix: %d providers, %dx replication, %d-page segment, %d reads/cell\n",
		rep.Providers, rep.Replicas, rep.SegPages, rep.Reads)
	fmt.Printf("latencies carry the 1/%d simulation time scale; breakers enabled in every cell\n\n", netsim.TimeScale)
	for _, p := range rep.Points() {
		fmt.Printf("   %-44s %10.2f %s\n", p.Name, p.Value, p.Unit)
	}
	for _, s := range rep.Scenarios {
		if s.HedgedReads > 0 || s.BreakersOpened > 0 {
			fmt.Printf("   [%s] hedged %d, wins %d, breaker-opens %d\n",
				s.Name, s.HedgedReads, s.HedgeWins, s.BreakersOpened)
		}
	}
	return writeJSON(jsonPath, rep)
}

// hotpath runs the zero-copy data path ablation (docs/perf.md) and
// optionally writes the BENCH_5.json perf-trajectory artifact.
func hotpath(sc bench.Scale, quick bool, jsonPath string) error {
	writes, seg := 24, uint64(64)
	if quick {
		writes = 8
	}
	rep, err := bench.AblateHotPath(writes, seg, sc)
	if err != nil {
		return err
	}
	fmt.Printf("Zero-copy vectored data path vs legacy codec (%d-page segments, %d writes/mode)\n",
		rep.SegPages, rep.Writes)
	fmt.Printf("latencies carry the 1/%d simulation time scale; round trips verified: %v\n\n",
		netsim.TimeScale, rep.RoundTripsVerified)
	for _, p := range rep.Points() {
		fmt.Printf("   %-32s %10.2f %s\n", p.Name, p.Value, p.Unit)
	}
	if jsonPath != "" {
		j, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(j, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// vshards sweeps the version-plane shard count under a fixed writer
// population (docs/vmanager-group.md) and optionally writes the
// BENCH_7.json shard-scaling artifact.
func vshards(quick bool, jsonPath string) error {
	shardCounts := []int{1, 2, 4}
	replicas, writers, perWriter := 2, 8, 40
	delay := 200 * time.Microsecond
	if quick {
		writers, perWriter = 4, 15
	}
	rep, err := bench.AblateVmanagerShards(shardCounts, replicas, writers, perWriter, delay)
	if err != nil {
		return err
	}
	fmt.Printf("Sharded version plane publish throughput (%d writers x %d publishes, %d replicas/shard, %.0f us append delay)\n\n",
		rep.Writers, rep.PerWriter, replicas, rep.AppendDelayMicro)
	for _, p := range rep.Points {
		fmt.Printf("   %d shard(s): %8.0f publishes/s  (%.2fx vs 1 shard; blobs/shard %v)\n",
			p.Shards, p.PublishesPerSec, p.SpeedupVsOne, p.BlobsPerShard)
	}
	if jsonPath != "" {
		j, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(j, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

func fig3Meta(read bool, providers []int, segments []uint64, sc bench.Scale) error {
	what := "READ"
	if !read {
		what = "WRITE"
	}
	fmt.Printf("Metadata %s overhead, single client (paper Figure 3%s)\n", what, map[bool]string{true: "a", false: "b"}[read])
	fmt.Printf("blob: %d pages x %d KB (tree height %d); time scale 1/%d\n\n",
		sc.BlobPages, sc.PageSize/1024, treeHeight(sc.BlobPages), netsim.TimeScale)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprint(w, "segment\t")
	for _, p := range providers {
		fmt.Fprintf(w, "%d providers\t", p)
	}
	fmt.Fprintln(w, "")
	for _, seg := range segments {
		fmt.Fprintf(w, "%d KB\t", seg*sc.PageSize/1024)
		for _, p := range providers {
			var pt bench.MetaPoint
			var err error
			if read {
				pt, err = bench.Fig3aMetadataRead(p, seg, sc)
			} else {
				pt, err = bench.Fig3bMetadataWrite(p, seg, sc)
			}
			if err != nil {
				return err
			}
			norm := pt.MeanTime.Seconds() / netsim.TimeScale
			fmt.Fprintf(w, "%.1fms (%.4fs)\t", pt.MeanTime.Seconds()*1e3, norm)
		}
		fmt.Fprintln(w, "")
	}
	w.Flush()
	fmt.Println("\n(parenthesized values are normalized to the paper's time base)")
	return nil
}

func fig3c(clients []int, sc bench.Scale, quick bool) error {
	fs := bench.DefaultFig3cScale()
	if quick {
		fs.StorageNodes = 8
		fs.Iterations = 3
	}
	fmt.Printf("Throughput of concurrent clients (paper Figure 3c)\n")
	fmt.Printf("%d storage nodes, %d KB segments, %d iterations/client; bandwidth scale x%d\n\n",
		fs.StorageNodes, fs.SegPages*fs.PageSize/1024, fs.Iterations, netsim.TimeScale)
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "clients\tRead\tWrite\tRead (cached metadata)\t")
	for _, n := range clients {
		fmt.Fprintf(w, "%d\t", n)
		for _, mode := range []bench.Mode{bench.ModeRead, bench.ModeWrite, bench.ModeReadCached} {
			pt, err := bench.Fig3cThroughput(n, mode, fs, sc)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%.1f MB/s (%.1f)\t", pt.PerClientMBps*netsim.TimeScale, pt.PerClientMBps)
			_ = mode
		}
		fmt.Fprintln(w, "")
	}
	w.Flush()
	fmt.Println("\n(per-client average; first value normalized to the paper's bandwidth base)")
	return nil
}

func ablations(sc bench.Scale, quick bool) error {
	prov := 10
	seg := uint64(64)
	if quick {
		prov, seg = 4, 16
	}
	groups := []struct {
		name string
		fn   func() ([]bench.AblationPoint, error)
	}{
		{"RPC aggregation (paper §V.A)", func() ([]bench.AblationPoint, error) {
			return bench.AblateBatching(prov, seg, sc)
		}},
		{"client metadata cache (paper §V.D)", func() ([]bench.AblationPoint, error) {
			return bench.AblateCache(prov, seg, sc)
		}},
		{"placement strategy", func() ([]bench.AblationPoint, error) {
			return bench.AblatePlacement(prov, 20, seg, sc)
		}},
		{"page size (striping vs streaming, §V.A)", func() ([]bench.AblationPoint, error) {
			return bench.AblatePageSize(prov, 256<<10, []uint64{4 << 10, 16 << 10, 64 << 10}, sc.Iterations)
		}},
		{"data replication factor", func() ([]bench.AblationPoint, error) {
			return bench.AblateReplication(prov, 16, []int{1, 2, 3}, sc)
		}},
		{"provider persistence (RAM vs diskstore)", func() ([]bench.AblationPoint, error) {
			return bench.AblatePersistence(prov, 8, seg, sc)
		}},
		{"restart recovery (sidecar index vs full replay)", func() ([]bench.AblationPoint, error) {
			n := 64
			if quick {
				n = 16
			}
			return bench.AblateRestart(n, 4<<20)
		}},
		{"replica repair (wiped provider, docs/replication.md)", func() ([]bench.AblationPoint, error) {
			w := 8
			if quick {
				w = 4
			}
			return bench.AblateRepair(prov, w, seg, sc)
		}},
		{"erasure coding vs 2x replication (docs/erasure.md)", func() ([]bench.AblationPoint, error) {
			w := 8
			if quick {
				w = 4
			}
			return bench.AblateErasure(w, seg, sc)
		}},
	}
	for _, g := range groups {
		fmt.Printf("-- %s\n", g.name)
		pts, err := g.fn()
		if err != nil {
			return err
		}
		for _, p := range pts {
			fmt.Printf("   %-48s %8.2f %s\n", p.Name, p.Value, p.Unit)
		}
	}
	return nil
}

func treeHeight(pages uint64) int {
	h := 1
	for s := pages; s > 1; s /= 2 {
		h++
	}
	return h
}
